//! The deterministic interleaving scheduler and its exploration drivers.
//!
//! One model *execution* runs the checked closure on real OS threads, but
//! only one thread is ever runnable: every instrumented operation (lock,
//! condvar wait/notify, atomic access, spawn, join) is a *scheduling
//! point* where the baton may pass to another thread. Given the sequence
//! of choices made at those points, an execution is fully deterministic —
//! which is what makes exhaustive exploration and replay possible.
//!
//! Exploration is DFS over the choice tree with a CHESS-style
//! *preemption bound*: schedules are explored in rounds of 0, 1, …, `b`
//! preemptions (a preemption = switching away from a thread that could
//! have kept running). Because each round is exhaustive before the next
//! begins, the first failing schedule found uses the minimum number of
//! preemptions that can trigger the failure — the printed schedule is
//! minimized in that sense. A seeded-random driver covers state spaces
//! too large to exhaust.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, OnceLock, PoisonError, Weak};

/// What a blocked-or-running model thread is currently doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    /// Eligible to receive the baton.
    Runnable,
    /// Parked in a mutex wait queue (woken by ownership handoff).
    BlockedMutex,
    /// Parked in a rwlock wait queue.
    BlockedRw,
    /// Parked on a condvar (woken by notify, then re-queued on the
    /// condvar's mutex).
    BlockedCv,
    /// Waiting for another thread to finish.
    BlockedJoin(usize),
    /// Done (normally or by panic).
    Finished,
}

/// Model state of one [`crate::sync::Mutex`]: ownership is handed off
/// FIFO on release, so a woken waiter owns the lock when it next runs.
/// (Real mutexes barge; the model explores the FIFO subset — see the
/// crate docs for the soundness notes.)
#[derive(Default)]
struct MuState {
    owner: Option<usize>,
    waiters: VecDeque<usize>,
}

/// Model state of one [`crate::sync::RwLock`]: shared readers XOR one
/// writer, FIFO queue, consecutive readers granted together.
#[derive(Default)]
struct RwState {
    writer: Option<usize>,
    readers: Vec<usize>,
    /// `(tid, wants_write)` in arrival order.
    waiters: VecDeque<(usize, bool)>,
}

/// Model state of one [`crate::sync::Condvar`]: waiters in wait order,
/// each remembering the mutex it must re-acquire.
#[derive(Default)]
struct CvState {
    waiters: VecDeque<(usize, usize)>,
}

/// One observed scheduling point with more than one runnable thread.
#[derive(Clone, Debug)]
pub(crate) struct Decision {
    /// Runnable thread ids, ascending.
    enabled: Vec<usize>,
    /// The thread the driver picked.
    chosen: usize,
    /// The thread that held the baton when the decision was made.
    was_active: usize,
    /// Whether `was_active` was itself still runnable (so that choosing
    /// someone else counts as a preemption).
    active_enabled: bool,
}

impl Decision {
    /// Alternatives in DFS order: the non-preemptive default first.
    fn canonical_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.enabled.len());
        if self.active_enabled {
            order.push(self.was_active);
        }
        for &t in &self.enabled {
            if !order.contains(&t) {
                order.push(t);
            }
        }
        order
    }

    fn preemptive(&self, choice: usize) -> bool {
        self.active_enabled && choice != self.was_active
    }
}

/// The per-execution choice source.
enum Driver {
    /// DFS: follow `prefix`, then always take the non-preemptive default.
    Dfs { prefix: Vec<usize>, pos: usize },
    /// Replay a recorded schedule verbatim (defaulting past its end).
    Replay { schedule: Vec<usize>, pos: usize },
    /// Seeded-random choice at every decision point.
    Random(rand::rngs::SmallRng),
}

impl Driver {
    fn choose(&mut self, enabled: &[usize], was_active: usize) -> usize {
        let default = || {
            if enabled.contains(&was_active) {
                was_active
            } else {
                enabled[0]
            }
        };
        match self {
            Driver::Dfs { prefix, pos } | Driver::Replay { schedule: prefix, pos } => {
                if *pos < prefix.len() {
                    let c = prefix[*pos];
                    *pos += 1;
                    if enabled.contains(&c) {
                        c
                    } else {
                        default()
                    }
                } else {
                    default()
                }
            }
            Driver::Random(rng) => {
                use rand::Rng;
                enabled[rng.gen_range(0..enabled.len())]
            }
        }
    }
}

/// A failure found by the checker, with the schedule that reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic message (assertion text) or scheduler diagnosis
    /// (deadlock, step budget).
    pub message: String,
    /// Comma-separated thread choices at each multi-way scheduling point;
    /// feed to [`replay`] to reproduce the failure deterministically.
    pub schedule: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failure: {}\n  schedule: \"{}\" (replay with tcs_verify::replay)",
            self.message, self.schedule
        )
    }
}

/// Exploration strategy.
#[derive(Clone, Debug)]
pub enum Mode {
    /// DFS over every schedule within the preemption bound.
    Exhaustive,
    /// `executions` runs with seeded-random choices — the fallback for
    /// state spaces too large to exhaust.
    Random {
        /// RNG seed (same seed ⇒ same run sequence).
        seed: u64,
        /// How many random executions to run.
        executions: u64,
    },
}

/// Checker configuration.
#[derive(Clone, Debug)]
pub struct Options {
    /// Maximum preemptions per schedule in [`Mode::Exhaustive`]
    /// (CHESS-style bound; rounds of 0..=bound are explored in order, so
    /// a reported failure uses the fewest preemptions possible).
    pub preemption_bound: usize,
    /// Hard cap on executions; hitting it marks the report incomplete.
    pub max_executions: u64,
    /// Per-execution scheduling-point budget (live-lock guard).
    pub max_steps: u64,
    /// Exhaustive DFS or seeded-random sampling.
    pub mode: Mode,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_executions: 200_000,
            max_steps: 1_000_000,
            mode: Mode::Exhaustive,
        }
    }
}

impl Options {
    /// Exhaustive exploration at the given preemption bound.
    pub fn exhaustive(preemption_bound: usize) -> Self {
        Options { preemption_bound, ..Options::default() }
    }

    /// Seeded-random sampling of `executions` schedules.
    pub fn random(seed: u64, executions: u64) -> Self {
        Options { mode: Mode::Random { seed, executions }, ..Options::default() }
    }
}

/// The checker's verdict.
#[derive(Debug)]
pub struct Report {
    /// Executions actually run.
    pub executions: u64,
    /// Whether the state space was exhausted (always false in
    /// [`Mode::Random`] and when `max_executions` was hit).
    pub complete: bool,
    /// The first failure found, if any, with its replayable schedule.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics (printing the minimized schedule) if a failure was found.
    #[track_caller]
    pub fn assert_pass(&self) {
        if let Some(f) = &self.failure {
            panic!("{f}\n  ({} executions explored before the failure)", self.executions);
        }
    }

    /// Panics if NO failure was found — for tests that pin a known-bad
    /// protocol shape as permanently caught by the checker.
    #[track_caller]
    pub fn assert_fails(&self) -> &Failure {
        match &self.failure {
            Some(f) => f,
            None => panic!(
                "model checker found no failure in {} executions (expected one)",
                self.executions
            ),
        }
    }
}

/// Marker payload for scheduler-initiated thread teardown: when one
/// thread fails, every other thread is unwound with this payload and the
/// panic is swallowed by the execution harness.
struct ModelAbort;

pub(crate) struct Core {
    threads: Vec<Run>,
    active: usize,
    aborting: bool,
    steps: u64,
    max_steps: u64,
    driver: Driver,
    trace: Vec<Decision>,
    failure: Option<String>,
    mutexes: Vec<MuState>,
    rwlocks: Vec<RwState>,
    condvars: Vec<CvState>,
}

impl Core {
    fn enabled(&self) -> Vec<usize> {
        (0..self.threads.len()).filter(|&t| self.threads[t] == Run::Runnable).collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|&t| t == Run::Finished)
    }

    /// Picks the next baton holder after the calling thread updated its
    /// own state. Returns false when the execution must abort (deadlock,
    /// budget, or a failure elsewhere).
    fn reschedule(&mut self, _me: usize) -> bool {
        if self.aborting {
            return false;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.fail(format!("scheduling-point budget exceeded ({} steps)", self.max_steps));
            return false;
        }
        let enabled = self.enabled();
        match enabled.len() {
            0 => {
                if self.all_finished() {
                    true // execution over; controller wakes on notify
                } else {
                    let states: Vec<String> = self
                        .threads
                        .iter()
                        .enumerate()
                        .map(|(t, s)| format!("t{t}:{s:?}"))
                        .collect();
                    self.fail(format!(
                        "deadlock: no runnable thread (lost wakeup or lock cycle) [{}]",
                        states.join(", ")
                    ));
                    false
                }
            }
            1 => {
                self.active = enabled[0];
                true
            }
            _ => {
                // `me` holds the baton, so `was_active == me`; choosing
                // another thread while `me` could continue is the
                // preemption the bound counts.
                let was_active = self.active;
                let active_enabled = enabled.contains(&was_active);
                let chosen = self.driver.choose(&enabled, was_active);
                self.trace.push(Decision { enabled, chosen, was_active, active_enabled });
                self.active = chosen;
                true
            }
        }
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(message);
        }
        self.aborting = true;
    }

    /// Release one mutex: FIFO ownership handoff.
    fn mutex_release(&mut self, obj: usize, me: usize) {
        let mu = &mut self.mutexes[obj];
        debug_assert_eq!(mu.owner, Some(me), "release by the owner");
        if let Some(w) = mu.waiters.pop_front() {
            mu.owner = Some(w);
            self.threads[w] = Run::Runnable;
        } else {
            mu.owner = None;
        }
    }

    /// Grant the rwlock to as many queue heads as compatible.
    fn rw_grant(&mut self, obj: usize) {
        let rw = &mut self.rwlocks[obj];
        while let Some(&(t, wants_write)) = rw.waiters.front() {
            if wants_write {
                if rw.writer.is_none() && rw.readers.is_empty() {
                    rw.waiters.pop_front();
                    rw.writer = Some(t);
                    self.threads[t] = Run::Runnable;
                }
                break;
            } else if rw.writer.is_none() {
                rw.waiters.pop_front();
                rw.readers.push(t);
                self.threads[t] = Run::Runnable;
            } else {
                break;
            }
        }
    }
}

pub(crate) struct Shared {
    pub(crate) core: StdMutex<Core>,
    pub(crate) cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

fn lock_core(shared: &Shared) -> std::sync::MutexGuard<'_, Core> {
    shared.core.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Per-thread context: model threads carry a handle to their run's shared
// scheduler; instrumented primitives look it up here.
// ---------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) tid: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// A sync object's link back to the model run it was created under:
/// `None` for objects created off model threads, a weak run handle plus
/// the object's scheduler id otherwise. Weak so leaked objects never keep
/// a finished run alive.
pub(crate) type ModelRef = Option<(Weak<Shared>, usize)>;

/// Resolves an object's [`ModelRef`] against the calling thread: model
/// semantics apply only when the thread is in a model run *and* the
/// object belongs to that same run. Everything else (off-model threads,
/// objects that outlived their run) falls back to real primitives.
pub(crate) fn resolve(model: &ModelRef) -> Option<(Ctx, usize)> {
    let (weak, id) = model.as_ref()?;
    let ctx = current()?;
    let run = weak.upgrade()?;
    if Arc::ptr_eq(&run, &ctx.shared) {
        Some((ctx, *id))
    } else {
        None
    }
}

/// Installs (once) a panic hook that silences panics raised on model
/// threads — exploration intentionally drives assertions to failure and
/// the harness reports them with their schedule instead.
fn install_quiet_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_MODEL.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Scheduling operations, called by model threads (baton in hand).
// ---------------------------------------------------------------------

/// Parks the calling thread until it holds the baton again. The core
/// lock is handed in and returned so callers can compose state changes
/// with the wait atomically. Panics with [`ModelAbort`] when the
/// execution is being torn down.
fn wait_for_baton<'a>(
    shared: &'a Shared,
    mut core: std::sync::MutexGuard<'a, Core>,
    me: usize,
) -> std::sync::MutexGuard<'a, Core> {
    shared.cv.notify_all();
    loop {
        if core.aborting {
            drop(core);
            std::panic::panic_any(ModelAbort);
        }
        if core.active == me && core.threads[me] == Run::Runnable {
            return core;
        }
        core = shared.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
    }
}

/// One scheduling point: lets the scheduler move the baton, then waits
/// until this thread runs again. Called *before* each visible operation.
pub(crate) fn yield_point(ctx: &Ctx) {
    let shared = &*ctx.shared;
    let core = lock_core(shared);
    let mut core = core;
    if !core.reschedule(ctx.tid) {
        drop(core);
        std::panic::panic_any(ModelAbort);
    }
    core = wait_for_baton(shared, core, ctx.tid);
    drop(core);
}

/// Public form of [`yield_point`] for instrumented atomics: a no-op off
/// model threads.
pub fn maybe_yield() {
    if let Some(ctx) = current() {
        yield_point(&ctx);
    }
}

// Object registration -------------------------------------------------

pub(crate) fn register_mutex() -> ModelRef {
    current().map(|ctx| {
        let mut core = lock_core(&ctx.shared);
        core.mutexes.push(MuState::default());
        (Arc::downgrade(&ctx.shared), core.mutexes.len() - 1)
    })
}

pub(crate) fn register_rwlock() -> ModelRef {
    current().map(|ctx| {
        let mut core = lock_core(&ctx.shared);
        core.rwlocks.push(RwState::default());
        (Arc::downgrade(&ctx.shared), core.rwlocks.len() - 1)
    })
}

pub(crate) fn register_condvar() -> ModelRef {
    current().map(|ctx| {
        let mut core = lock_core(&ctx.shared);
        core.condvars.push(CvState::default());
        (Arc::downgrade(&ctx.shared), core.condvars.len() - 1)
    })
}

// Mutex ---------------------------------------------------------------

pub(crate) fn mutex_lock(ctx: &Ctx, obj: usize) {
    yield_point(ctx);
    let shared = &*ctx.shared;
    let mut core = lock_core(shared);
    if core.mutexes[obj].owner.is_none() {
        core.mutexes[obj].owner = Some(ctx.tid);
        return;
    }
    core.mutexes[obj].waiters.push_back(ctx.tid);
    core.threads[ctx.tid] = Run::BlockedMutex;
    if !core.reschedule(ctx.tid) {
        drop(core);
        std::panic::panic_any(ModelAbort);
    }
    core = wait_for_baton(shared, core, ctx.tid);
    debug_assert_eq!(core.mutexes[obj].owner, Some(ctx.tid), "FIFO handoff granted the lock");
    drop(core);
}

pub(crate) fn mutex_unlock(ctx: &Ctx, obj: usize) {
    let mut core = lock_core(&ctx.shared);
    core.mutex_release(obj, ctx.tid);
    drop(core);
    // Releases are not scheduling points: the next visible op of this
    // thread yields, which is where a woken waiter can be scheduled.
}

// RwLock --------------------------------------------------------------

pub(crate) fn rw_lock(ctx: &Ctx, obj: usize, write: bool) {
    yield_point(ctx);
    let shared = &*ctx.shared;
    let mut core = lock_core(shared);
    let free_now = {
        let rw = &core.rwlocks[obj];
        let no_queue = rw.waiters.is_empty();
        if write {
            rw.writer.is_none() && rw.readers.is_empty() && no_queue
        } else {
            rw.writer.is_none() && no_queue
        }
    };
    if free_now {
        let rw = &mut core.rwlocks[obj];
        if write {
            rw.writer = Some(ctx.tid);
        } else {
            rw.readers.push(ctx.tid);
        }
        return;
    }
    core.rwlocks[obj].waiters.push_back((ctx.tid, write));
    core.threads[ctx.tid] = Run::BlockedRw;
    if !core.reschedule(ctx.tid) {
        drop(core);
        std::panic::panic_any(ModelAbort);
    }
    core = wait_for_baton(shared, core, ctx.tid);
    drop(core);
}

pub(crate) fn rw_unlock(ctx: &Ctx, obj: usize, write: bool) {
    let mut core = lock_core(&ctx.shared);
    {
        let rw = &mut core.rwlocks[obj];
        if write {
            debug_assert_eq!(rw.writer, Some(ctx.tid));
            rw.writer = None;
        } else {
            let pos = rw.readers.iter().position(|&t| t == ctx.tid);
            debug_assert!(pos.is_some(), "read-unlock by a reader");
            if let Some(p) = pos {
                rw.readers.swap_remove(p);
            }
        }
    }
    core.rw_grant(obj);
    drop(core);
}

// Condvar -------------------------------------------------------------

/// Atomically releases `mu` and waits on `cv`; on return the calling
/// thread owns `mu` again.
pub(crate) fn cv_wait(ctx: &Ctx, cv: usize, mu: usize) {
    let shared = &*ctx.shared;
    let mut core = lock_core(shared);
    core.mutex_release(mu, ctx.tid);
    core.condvars[cv].waiters.push_back((ctx.tid, mu));
    core.threads[ctx.tid] = Run::BlockedCv;
    if !core.reschedule(ctx.tid) {
        drop(core);
        std::panic::panic_any(ModelAbort);
    }
    core = wait_for_baton(shared, core, ctx.tid);
    debug_assert_eq!(core.mutexes[mu].owner, Some(ctx.tid), "woken waiter re-owns its mutex");
    drop(core);
}

pub(crate) fn cv_notify(ctx: &Ctx, cv: usize, all: bool) {
    let mut core = lock_core(&ctx.shared);
    while let Some((t, mu)) = core.condvars[cv].waiters.pop_front() {
        // The woken waiter must re-acquire its mutex before running.
        if core.mutexes[mu].owner.is_none() {
            core.mutexes[mu].owner = Some(t);
            core.threads[t] = Run::Runnable;
        } else {
            core.mutexes[mu].waiters.push_back(t);
            core.threads[t] = Run::BlockedMutex;
        }
        if !all {
            break;
        }
    }
    drop(core);
}

// Spawn / join / finish ------------------------------------------------

/// Registers and starts a new model thread running `f`; returns its tid.
pub(crate) fn spawn_thread(ctx: &Ctx, f: impl FnOnce() + Send + 'static) -> usize {
    let tid = {
        let mut core = lock_core(&ctx.shared);
        core.threads.push(Run::Runnable);
        core.threads.len() - 1
    };
    let shared = Arc::clone(&ctx.shared);
    let handle = std::thread::spawn(move || run_model_thread(shared, tid, f));
    ctx.shared.handles.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
    // The child is now an alternative at every later decision; give the
    // scheduler the chance to run it immediately too.
    yield_point(ctx);
    tid
}

/// Blocks until thread `target` finishes.
pub(crate) fn join_thread(ctx: &Ctx, target: usize) {
    yield_point(ctx);
    let shared = &*ctx.shared;
    let mut core = lock_core(shared);
    if core.threads[target] == Run::Finished {
        return;
    }
    core.threads[ctx.tid] = Run::BlockedJoin(target);
    if !core.reschedule(ctx.tid) {
        drop(core);
        std::panic::panic_any(ModelAbort);
    }
    core = wait_for_baton(shared, core, ctx.tid);
    drop(core);
}

/// Body wrapper for every model thread: waits for its first baton, runs
/// `f` under `catch_unwind`, records failures, and hands the baton on.
fn run_model_thread(shared: Arc<Shared>, tid: usize, f: impl FnOnce() + Send) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Ctx { shared: Arc::clone(&shared), tid }));
    IN_MODEL.with(|flag| flag.set(true));
    // Initial baton wait; an abort arriving first skips the body.
    let started = {
        let mut core = lock_core(&shared);
        loop {
            if core.aborting {
                break false;
            }
            if core.active == tid && core.threads[tid] == Run::Runnable {
                break true;
            }
            core = shared.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
        }
    };
    if started {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        if let Err(payload) = result {
            if payload.downcast_ref::<ModelAbort>().is_none() {
                lock_core(&shared).fail(payload_str(&*payload));
            }
        }
    }
    let mut core = lock_core(&shared);
    core.threads[tid] = Run::Finished;
    // Wake joiners.
    for t in 0..core.threads.len() {
        if core.threads[t] == Run::BlockedJoin(tid) {
            core.threads[t] = Run::Runnable;
        }
    }
    let _ = core.reschedule(tid); // abort or baton handoff; either way we exit
    drop(core);
    shared.cv.notify_all();
    CURRENT.with(|c| *c.borrow_mut() = None);
}

// ---------------------------------------------------------------------
// Execution driver + explorer
// ---------------------------------------------------------------------

/// Runs one execution of `f` under `driver`; returns the decision trace
/// and the failure, if any.
fn run_one<F>(f: &Arc<F>, driver: Driver, max_steps: u64) -> (Vec<Decision>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let shared = Arc::new(Shared {
        core: StdMutex::new(Core {
            threads: vec![Run::Runnable],
            active: 0,
            aborting: false,
            steps: 0,
            max_steps,
            driver,
            trace: Vec::new(),
            failure: None,
            mutexes: Vec::new(),
            rwlocks: Vec::new(),
            condvars: Vec::new(),
        }),
        cv: StdCondvar::new(),
        handles: StdMutex::new(Vec::new()),
    });
    let root = {
        let shared = Arc::clone(&shared);
        let f = Arc::clone(f);
        std::thread::spawn(move || run_model_thread(shared, 0, move || f()))
    };
    // Controller: wait for every model thread to finish. Aborts unblock
    // parked threads through `wait_for_baton`, so finishing is
    // guaranteed.
    {
        let mut core = lock_core(&shared);
        while !core.all_finished() {
            core = shared.cv.wait(core).unwrap_or_else(PoisonError::into_inner);
        }
        drop(core);
    }
    let _ = root.join();
    loop {
        let h = shared.handles.lock().unwrap_or_else(PoisonError::into_inner).pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let mut core = lock_core(&shared);
    let trace = std::mem::take(&mut core.trace);
    let failure = core.failure.take();
    (trace, failure)
}

/// The schedule string of a trace: chosen tids at multi-way points.
fn schedule_of(trace: &[Decision]) -> String {
    trace.iter().map(|d| d.chosen.to_string()).collect::<Vec<_>>().join(",")
}

/// DFS backtracking: the next prefix to explore within `bound`
/// preemptions, or `None` when this round's space is exhausted.
fn next_prefix(trace: &[Decision], bound: usize) -> Option<Vec<usize>> {
    // Cumulative preemptions BEFORE each decision.
    let mut pre = Vec::with_capacity(trace.len());
    let mut acc = 0usize;
    for d in trace {
        pre.push(acc);
        if d.preemptive(d.chosen) {
            acc += 1;
        }
    }
    for d in (0..trace.len()).rev() {
        let dec = &trace[d];
        let order = dec.canonical_order();
        let idx = order.iter().position(|&t| t == dec.chosen)?;
        for &alt in &order[idx + 1..] {
            let cost = pre[d] + usize::from(dec.preemptive(alt));
            if cost <= bound {
                let mut p: Vec<usize> = trace[..d].iter().map(|x| x.chosen).collect();
                p.push(alt);
                return Some(p);
            }
        }
    }
    None
}

/// Explores interleavings of `f` per `opts` and reports the verdict.
///
/// `f` is run once per schedule, on fresh threads each time; it must be
/// self-contained (build its own shared state internally) and
/// deterministic apart from scheduling.
pub fn check<F>(opts: Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut executions = 0u64;
    match opts.mode {
        Mode::Exhaustive => {
            // Iterative deepening over the preemption budget: round `b`
            // is exhaustive, so the first failure found is minimal in
            // preemptions.
            for bound in 0..=opts.preemption_bound {
                let mut prefix: Vec<usize> = Vec::new();
                loop {
                    if executions >= opts.max_executions {
                        return Report { executions, complete: false, failure: None };
                    }
                    let driver = Driver::Dfs { prefix: prefix.clone(), pos: 0 };
                    let (trace, failure) = run_one(&f, driver, opts.max_steps);
                    executions += 1;
                    if let Some(message) = failure {
                        return Report {
                            executions,
                            complete: false,
                            failure: Some(Failure { message, schedule: schedule_of(&trace) }),
                        };
                    }
                    match next_prefix(&trace, bound) {
                        Some(p) => prefix = p,
                        None => break,
                    }
                }
            }
            Report { executions, complete: true, failure: None }
        }
        Mode::Random { seed, executions: n } => {
            use rand::SeedableRng;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            for _ in 0..n.min(opts.max_executions) {
                use rand::Rng;
                let sub = rand::rngs::SmallRng::seed_from_u64(rng.gen());
                let (trace, failure) = run_one(&f, Driver::Random(sub), opts.max_steps);
                executions += 1;
                if let Some(message) = failure {
                    return Report {
                        executions,
                        complete: false,
                        failure: Some(Failure { message, schedule: schedule_of(&trace) }),
                    };
                }
            }
            Report { executions, complete: false, failure: None }
        }
    }
}

/// Replays one recorded schedule (the `schedule` string of a
/// [`Failure`]) against `f`; returns the failure it reproduces, if any.
pub fn replay<F>(schedule: &str, f: F) -> Option<Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let parsed: Vec<usize> = schedule
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let f = Arc::new(f);
    let driver = Driver::Replay { schedule: parsed, pos: 0 };
    let (trace, failure) = run_one(&f, driver, Options::default().max_steps);
    failure.map(|message| Failure { message, schedule: schedule_of(&trace) })
}
