#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! The checker checking itself: known-good protocols must pass with a
//! complete report, known-bad protocols must fail with a replayable
//! minimized schedule, and lost wakeups must surface as deadlocks.

use std::sync::Arc;
use tcs_verify::sync::{AtomicU64, Condvar, Mutex, Ordering, RwLock};
use tcs_verify::{check, replay, thread, Options};

/// Two unsynchronized read-modify-write increments: the classic lost
/// update. Needs one preemption between the load and the store.
fn racy_increments() {
    let counter = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&counter);
    let t = thread::spawn(move || {
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
    });
    let v = counter.load(Ordering::SeqCst);
    counter.store(v + 1, Ordering::SeqCst);
    t.join();
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn finds_the_lost_update_and_replays_it() {
    let report = check(Options::exhaustive(2), racy_increments);
    let failure = report.assert_fails();
    assert!(failure.message.contains("lost update"), "got: {}", failure.message);
    // Iterative deepening: bound 0 (serial schedules) cannot lose the
    // update, so the minimized schedule uses exactly one preemption.
    assert!(!failure.schedule.is_empty(), "a preemptive schedule was recorded");
    // The printed schedule reproduces the same failure deterministically.
    let again = replay(&failure.schedule, racy_increments)
        .unwrap_or_else(|| panic!("replay of \"{}\" did not fail", failure.schedule));
    assert!(again.message.contains("lost update"), "got: {}", again.message);
}

#[test]
fn serial_schedules_cannot_lose_the_update() {
    // Bound 0 = no preemptions: each thread runs its two steps
    // back-to-back, so the race is invisible — and the report must be
    // complete (the bound-0 space was exhausted).
    let report = check(Options::exhaustive(0), racy_increments);
    report.assert_pass();
    assert!(report.complete);
}

#[test]
fn mutex_protected_increments_pass_exhaustively() {
    let report = check(Options::exhaustive(2), || {
        let counter = Arc::new(Mutex::new(0u64));
        let c = Arc::clone(&counter);
        let t = thread::spawn(move || *c.lock() += 1);
        *counter.lock() += 1;
        t.join();
        assert_eq!(*counter.lock(), 2);
    });
    report.assert_pass();
    assert!(report.complete, "explored {} executions without exhausting", report.executions);
    assert!(report.executions > 1, "more than one interleaving exists");
}

#[test]
fn mutex_guarantees_mutual_exclusion() {
    // A non-atomic critical section under a mutex: entry count must
    // never see a second thread inside.
    let report = check(Options::exhaustive(2), || {
        let inside = Arc::new(AtomicU64::new(0));
        let lock = Arc::new(Mutex::new(()));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let inside = Arc::clone(&inside);
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || {
                let _g = lock.lock();
                let now = inside.load(Ordering::SeqCst);
                assert_eq!(now, 0, "two threads inside the critical section");
                inside.store(now + 1, Ordering::SeqCst);
                inside.store(now, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join();
        }
    });
    report.assert_pass();
    assert!(report.complete);
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    // Broken protocol: the waiter parks unconditionally, so a notify
    // that lands before the wait is lost and the waiter sleeps forever.
    // The scheduler must diagnose the schedule where the notifier runs
    // first.
    let report = check(Options::exhaustive(2), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (mu, cv) = &*s;
            let mut ready = mu.lock();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (mu, cv) = &*state;
        let mut ready = mu.lock();
        cv.wait(&mut ready); // BUG: no predicate check — if the notify
                             // already happened, nobody wakes us.
        drop(ready);
        t.join();
    });
    let failure = report.assert_fails();
    assert!(failure.message.contains("deadlock"), "got: {}", failure.message);
}

#[test]
fn predicate_loop_fixes_the_lost_wakeup() {
    // Same shape with the canonical while-loop: no schedule deadlocks.
    // (The wait sits inside the loop; when the notify wins the race the
    // predicate is already true and the waiter never parks.)
    let report = check(Options::exhaustive(2), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (mu, cv) = &*s;
            let mut ready = mu.lock();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (mu, cv) = &*state;
        let mut ready = mu.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join();
    });
    report.assert_pass();
    assert!(report.complete);
}

#[test]
fn rwlock_readers_exclude_the_writer() {
    let report = check(Options::exhaustive(2), || {
        let data = Arc::new(RwLock::new(0u64));
        let d = Arc::clone(&data);
        let w = thread::spawn(move || *d.write() += 1);
        let r = *data.read();
        assert!(r == 0 || r == 1, "torn read");
        w.join();
        assert_eq!(*data.read(), 1);
    });
    report.assert_pass();
    assert!(report.complete);
}

#[test]
fn random_mode_finds_the_race_too() {
    let report = check(Options::random(0xfee1_dead, 500), racy_increments);
    let failure = report.assert_fails();
    let again = replay(&failure.schedule, racy_increments);
    assert!(again.is_some(), "random-found schedule replays deterministically");
}

#[test]
fn instrumented_primitives_work_off_model() {
    // The fallback path: the same types behave as real primitives when
    // no model run is active (this is what keeps ordinary unit tests
    // passing under `--cfg tcs_model` builds).
    let counter = Arc::new(Mutex::new(0u64));
    let state = Arc::new((Mutex::new(false), Condvar::new()));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let counter = Arc::clone(&counter);
        let state = Arc::clone(&state);
        handles.push(thread::spawn(move || {
            *counter.lock() += 1;
            let (mu, cv) = &*state;
            let mut ready = mu.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        }));
    }
    {
        let (mu, cv) = &*state;
        *mu.lock() = true;
        cv.notify_all();
    }
    for h in handles {
        h.join();
    }
    assert_eq!(*counter.lock(), 4);
    let atomic = AtomicU64::new(7);
    assert_eq!(atomic.fetch_add(1, Ordering::SeqCst), 7);
    assert_eq!(atomic.load(Ordering::SeqCst), 8);
}

#[test]
fn three_thread_handoff_explores_and_passes() {
    // Three threads passing a token through a shared mutex; exercises
    // spawn/join fan-out and FIFO handoff with a bigger enabled set.
    let report = check(Options::exhaustive(2), || {
        let total = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for i in 0..3u64 {
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || *total.lock() += i + 1));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(*total.lock(), 6);
    });
    report.assert_pass();
    assert!(report.complete);
    assert!(report.executions >= 6, "at least the serial orders: {}", report.executions);
}
