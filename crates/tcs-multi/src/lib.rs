//! Multi-query subsystem: many standing time-constrained queries over one
//! edge stream.
//!
//! The paper's engines answer **one** continuous query per stream; a
//! production deployment serves thousands of tenants watching the same
//! traffic. Running N independent [`TimingEngine`]s costs N copies of the
//! live window and N× per-edge work even when an arriving edge can match
//! none of a query's edge predicates. This crate removes both
//! multipliers:
//!
//! * [`MultiQueryEngine`] — a dynamic query registry over **one** shared
//!   [`SlidingWindow`](tcs_graph::SlidingWindow) +
//!   [`Snapshot`](tcs_graph::Snapshot). Every registered query's engine
//!   resolves stored edge ids through the shared snapshot (the
//!   [`LiveEdgeView`](tcs_graph::LiveEdgeView) seam in `tcs-core`), so
//!   the window is held once, not once per query.
//! * **Signature-routed dispatch** — per-edge work is proportional to the
//!   queries that can actually react, not to the number registered (see
//!   the dispatch-index lifecycle below).
//! * [`ShardedMultiEngine`] — a concurrent front-end partitioning the
//!   registry across worker threads, one shard per core, with per-shard
//!   dispatch tables (see shard ownership below).
//!
//! # Dispatch-index lifecycle
//!
//! The index maps a label signature `(src VLabel, dst VLabel, ELabel)` to
//! the ids of the registered queries with at least one query edge of that
//! signature ([`QueryPlan::signatures`]). It is maintained purely by
//! registration churn:
//!
//! * [`MultiQueryEngine::register`] inserts the new id under every
//!   signature of the compiled plan;
//! * [`MultiQueryEngine::unregister`] removes the id from those buckets
//!   (dropping buckets that empty out);
//! * [`MultiQueryEngine::advance`] consults the index twice per window
//!   event — once per expired edge (only engines whose plans have
//!   deletion positions for the signature run Algorithm 2) and once for
//!   the arrival (only engines with candidate query edges run
//!   Algorithm 1). Everything else is untouched: an edge matching no
//!   registered signature costs one hash lookup total, not one per query.
//!
//! The keys are a prefilter exactly like the plans' own signature index:
//! a routed engine still runs its full candidate/self-loop/compatibility
//! checks, so dispatch is semantically invisible —
//! [`DispatchMode::Broadcast`] (route everything to everyone, i.e. N
//! independent engines each owning a private window copy) emits the
//! identical per-query match streams, and the equivalence tests enforce
//! it.
//!
//! # Registration semantics
//!
//! Queries register and unregister **mid-stream**. A query registered at
//! stream position `p` behaves exactly like a fresh independent
//! [`TimingEngine`] that starts consuming the stream at `p`: edges
//! already inside the window when it registers are *not* replayed into
//! it (they can resolve through the shared snapshot but never enter the
//! newcomer's partial-match store, so they never appear in its matches).
//! Unregistering drops the query's store immediately; its
//! [`QueryId`] is never reused. Expiry routing to a query registered
//! after the expiring edge arrived is a no-op on its store — stores
//! ignore expiries for edges they never absorbed.
//!
//! # Shard ownership
//!
//! [`ShardedMultiEngine`] owns `n_shards` single-threaded
//! [`MultiQueryEngine`]s. Each query is **homed** on exactly one shard
//! (least-loaded at registration) and never migrates; each shard owns its
//! own window + snapshot holding only the edges routed to it, so shards
//! share nothing and need no locks. The front-end keeps a per-signature
//! shard-routing table (the union of its shards' dispatch indexes) and,
//! during [`ShardedMultiEngine::process`], fans each edge out over
//! `tcs-concurrent`'s bounded channels to the shards that can react; a
//! shard's window therefore sees a filtered — but still strictly
//! timestamp-increasing — substream, which is exactly what its queries
//! would have kept from the full stream. Registration churn is a
//! front-end (single-threaded) operation between `process` calls; match
//! streams come back per shard and are concatenated (order across shards
//! is unspecified — within one query it remains stream order).
//!
//! [`TimingEngine`]: tcs_core::TimingEngine
//! [`QueryPlan::signatures`]: tcs_core::QueryPlan::signatures

pub mod engine;
pub mod shard;

pub use engine::{DispatchMode, MultiQueryEngine, MultiStats, QueryId, QueryStats};
pub use shard::ShardedMultiEngine;
