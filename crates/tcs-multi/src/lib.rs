//! Multi-query subsystem: many standing time-constrained queries over one
//! edge stream.
//!
//! The paper's engines answer **one** continuous query per stream; a
//! production deployment serves thousands of tenants watching the same
//! traffic. Running N independent [`TimingEngine`]s costs N copies of the
//! live window and N× per-edge work even when an arriving edge can match
//! none of a query's edge predicates. This crate removes both
//! multipliers:
//!
//! * [`MultiQueryEngine`] — a dynamic query registry over **one** shared
//!   [`SlidingWindow`](tcs_graph::SlidingWindow) +
//!   [`Snapshot`](tcs_graph::Snapshot). Every registered query's engine
//!   resolves stored edge ids through the shared snapshot (the
//!   [`LiveEdgeView`](tcs_graph::LiveEdgeView) seam in `tcs-core`), so
//!   the window is held once, not once per query.
//! * **Signature-routed dispatch** — per-edge work is proportional to the
//!   queries that can actually react, not to the number registered (see
//!   the dispatch-index lifecycle below).
//! * [`ShardedMultiEngine`] — a concurrent front-end partitioning the
//!   registry across worker threads, one shard per core, with per-shard
//!   dispatch tables (see shard ownership below).
//!
//! # Dispatch-index lifecycle
//!
//! The index maps a label signature `(src VLabel, dst VLabel, ELabel)` to
//! the ids of the registered queries with at least one query edge of that
//! signature ([`QueryPlan::signatures`]). It is maintained purely by
//! registration churn:
//!
//! * [`MultiQueryEngine::register`] inserts the new id under every
//!   signature of the compiled plan;
//! * [`MultiQueryEngine::unregister`] removes the id from those buckets
//!   (dropping buckets that empty out);
//! * [`MultiQueryEngine::advance`] consults the index twice per window
//!   event — once per expired edge (only engines whose plans have
//!   deletion positions for the signature run Algorithm 2) and once for
//!   the arrival (only engines with candidate query edges run
//!   Algorithm 1). Everything else is untouched: an edge matching no
//!   registered signature costs one hash lookup total, not one per query.
//!
//! The keys are a prefilter exactly like the plans' own signature index:
//! a routed engine still runs its full candidate/self-loop/compatibility
//! checks, so dispatch is semantically invisible —
//! [`DispatchMode::Broadcast`] (route everything to everyone, i.e. N
//! independent engines each owning a private window copy) emits the
//! identical per-query match streams, and the equivalence tests enforce
//! it.
//!
//! # Registration semantics
//!
//! Queries register and unregister **mid-stream**. A query registered at
//! stream position `p` behaves exactly like a fresh independent
//! [`TimingEngine`] that starts consuming the stream at `p`: edges
//! already inside the window when it registers are *not* replayed into
//! it (they can resolve through the shared snapshot but never enter the
//! newcomer's partial-match store, so they never appear in its matches).
//! Unregistering drops the query's store immediately; its
//! [`QueryId`] is never reused. Expiry routing to a query registered
//! after the expiring edge arrived is a no-op on its store — stores
//! ignore expiries for edges they never absorbed.
//!
//! # Sharing model
//!
//! A tenant fleet is dominated by *near-identical* standing queries —
//! the same fraud template registered thousands of times. Under
//! [`ShareMode::Shared`] (the default when dispatch is signature-routed)
//! the registry keys engines by **plan identity**, not registration:
//!
//! * **Identity** is the canonical
//!   [`PlanFingerprint`](tcs_core::plan::PlanFingerprint) — WL colour
//!   refinement plus individualize-and-refine over the query graph with
//!   its timing order, so two plans share iff they are the *same query
//!   up to edge/vertex numbering*, not merely textually equal. The
//!   first registration of a fingerprint founds a **template** (one
//!   [`TimingEngine`], one store); every later one becomes a
//!   *subscriber* on the existing template. Store bytes and per-edge
//!   work are paid once per template, never per subscriber.
//! * **Late joiners stay exact.** A subscriber joining a warm template
//!   records the engine's emission *epoch* (arrival count at join);
//!   every match carries an emission *floor* — the earliest arrival
//!   ordinal among its constituent edges — and fan-out delivers a match
//!   to a subscriber only if `floor > epoch`. A late joiner therefore
//!   sees exactly the matches built entirely from edges that arrived
//!   after it registered — byte-identical to a fresh independent
//!   engine, which the equivalence suites enforce under churn.
//! * **Permuted twins** (same query, different edge numbering) share
//!   too: registration canonicalizes, and fan-out remaps each match's
//!   edge list back into the subscriber's own query-edge order.
//! * **Attribution.** Per-subscriber [`QueryStats`] carry `routed`
//!   (edges dispatched to the subscriber's template while it was live)
//!   and `emitted` (matches actually delivered past the epoch filter);
//!   engine work counters are deltas from the subscriber's join point;
//!   template store bytes are charged to the founding subscriber and
//!   reported per template in [`MultiStats::templates`]. Unregistering
//!   the last subscriber drops the template and its store.
//! * **Blast radius.** Quarantine is per *template*: a fault while a
//!   shared template works unregisters every subscriber of that
//!   template (one [`QueryFault`] each, same payload and position) —
//!   wider than the private per-query radius, and the chaos tests pin
//!   both. The plan stays re-registerable; the next registration founds
//!   a fresh template.
//! * **Ablation.** [`ShareMode::Private`] (and broadcast dispatch,
//!   which implies it) keeps one engine per registration — the
//!   pre-sharing behaviour, kept as a measurable baseline; the
//!   `share_rows` benchmark gates the 10k-duplicate win against it.
//!
//! The sharded front-end homes registrations by fingerprint, so all
//! subscribers of a template land on the template's shard and the
//! per-shard loads count *templates*, not registrations.
//!
//! # Shard ownership
//!
//! [`ShardedMultiEngine`] owns `n_shards` single-threaded
//! [`MultiQueryEngine`]s. Each query is **homed** on exactly one shard
//! (least-loaded at registration) and never migrates; each shard owns its
//! own window + snapshot holding only the edges routed to it, so shards
//! share nothing and need no locks. The front-end keeps a per-signature
//! shard-routing table (the union of its shards' dispatch indexes) and,
//! during [`ShardedMultiEngine::process`], fans each edge out over
//! `tcs-concurrent`'s bounded channels to the shards that can react; a
//! shard's window therefore sees a filtered — but still nondecreasing in
//! timestamp — substream, which is exactly what its queries would have
//! kept from the full stream. Registration churn is a front-end
//! (single-threaded) operation between `process` calls; match streams
//! come back per shard and are concatenated (order across shards is
//! unspecified — within one query it remains stream order).
//!
//! # Failure model
//!
//! A multi-tenant registry is exactly where faults hurt the most: one
//! tenant's pathological query, one source's corrupted feed, or one slow
//! core must not take down every other tenant. The crate names three
//! fault classes and gives each the smallest blast radius that keeps the
//! survivors' semantics exact:
//!
//! 1. **Bad input** is rejected *at the boundary, before any state
//!    mutates*. Every arrival passes an [`IngestGate`](tcs_core::IngestGate)
//!    (watermark + live-edge bookkeeping): out-of-order timestamps are
//!    handled per the configured [`OrderPolicy`] (typed rejection by
//!    default, or clamp-to-watermark / counted silent drop), duplicate
//!    live edge ids and inconsistently-labelled endpoints are always
//!    rejected. [`MultiQueryEngine::try_advance`] and
//!    [`ShardedMultiEngine::try_process`] surface the
//!    [`IngestError`]; the panicking `advance`/`process` wrappers keep
//!    the happy-path API. `try_process` is batch-atomic: on `Err`
//!    nothing from the batch was admitted anywhere. Blast radius: the
//!    offending edge (or batch), zero queries.
//! 2. **Query faults** — a panic inside one query's per-arrival work.
//!    Under [`FaultPolicy::Quarantine`] (the default for shards of a
//!    [`ShardedMultiEngine`]; bare engines default to
//!    [`FaultPolicy::Propagate`]) the registry catches the panic at a
//!    per-query `catch_unwind` boundary, unregisters the offender and
//!    records a [`QueryFault`] (id, stringified payload, stream
//!    position) in a fault log surfaced through `stats()`. Blast
//!    radius: the faulting query's *template* — under sharing that is
//!    every subscriber of the shared engine (see the sharing model
//!    above), under [`ShareMode::Private`] exactly the one query. The
//!    shard, worker thread and channel keep serving, and the
//!    dispatcher never observes a dead channel for this class.
//! 3. **Worker faults and overload** — a panic outside the per-query
//!    boundary kills a shard worker; the dispatcher skips the dead
//!    channel for the rest of the batch and the supervisor then rebuilds
//!    the shard, re-homing surviving queries under their original ids
//!    (window state restarts fresh, like a late registration;
//!    [`ShardHealth::restarts`] counts rebuilds). A worker that is
//!    merely *slow* fills its channel instead, and the configured
//!    [`OverloadPolicy`] either back-pressures (default, lossless) or
//!    sheds bounded work with per-shard counters. Blast radius: one
//!    shard's recent window (restart) or the shed edges (overload) —
//!    never another shard.
//!
//! The `failpoints` cargo feature (off by default, zero-cost when off)
//! compiles in the `tcs-core` fault-injection sites the chaos tests use
//! to drive all three classes deterministically.
//!
//! # Observability
//!
//! Every layer of the stack reports into one optional
//! [`Recorder`](tcs_telemetry::Recorder) seam
//! ([`MultiQueryEngine::set_recorder`] /
//! [`ShardedMultiEngine::set_recorder`]; bare engines have
//! `TimingEngine::set_recorder`). The seam is `Option<Arc<Recorder>>`,
//! default `None`: un-armed it costs one branch per instrumented site,
//! and armed it **never** perturbs behavior — match streams and the
//! oracle-comparable `EngineStats`/[`MultiStats`] counters stay
//! byte-identical with the recorder on vs off
//! (`tests/telemetry_equivalence.rs` enforces it; the CI gate holds the
//! armed hub workload within 1.05× of the no-op seam). What a recorder
//! collects:
//!
//! * **Per-edge processing latency** (`tcs_edge_latency_ns`) — wall
//!   time one arrival spends in the matching core, recorded on every
//!   `sample_every`-th edge (default 1 in 16; `with_sampling(1)` is
//!   exact) into a mergeable log-scale histogram with O(1) record and
//!   ≤ ~3% quantile error (`p50`/`p99`/`p999`).
//! * **Detection latency** (`tcs_detection_latency_ns`) — emission time minus
//!   the *completing edge's* arrival time, per query (`QueryId`; a bare
//!   engine records under scope 0) and per template (canonical
//!   [`PlanFingerprint`](tcs_core::plan::PlanFingerprint) digest).
//!   Under the sharded front-end, chunks are stamped at enqueue, so
//!   queue wait inside a worker's channel counts toward detection —
//!   that is the latency a tenant actually experiences. At most 1024
//!   scopes get private histograms; the rest collapse into one overflow
//!   scope.
//! * **Skew and shard load** — per-shard gauges (chunks routed, queue
//!   depth high-water mark, shed edges, worker restarts) refreshed
//!   every `process` call, plus hot-key counters over arrival endpoints
//!   (top-16 keys and log2-degree buckets: mass in high buckets *is*
//!   hub skew). Hot keys ride the sampled cadence; gauges and events
//!   are always exact. The registry records keys once at the routing
//!   front-end, and inner engines of a registry are never separately
//!   armed, so nothing double-counts.
//! * **Structured events** — a bounded ring of sequence-numbered
//!   lifecycle events: `Register`/`Unregister` (registration churn),
//!   `Quarantine` (query fault: id, stream position, truncated
//!   payload), `Shed` (overload: shard, edge count, which end),
//!   `WorkerRestart` (shard rebuild), `DebtSettled` (deferred
//!   maintenance drained). A quarantined query logs exactly one
//!   `Quarantine` event, not an `Unregister`.
//!
//! `Recorder::snapshot()` exports everything as a
//! [`TelemetrySnapshot`](tcs_telemetry::TelemetrySnapshot);
//! `Recorder::dump(dir)` writes `metrics.prom` (Prometheus text) and
//! `metrics.json` (exact JSON round-trip) — `repro telemetry` prints
//! the quantile tables, and `examples/cyber_attack.rs --metrics-dir`
//! dumps them periodically for scraping.
//!
//! [`TimingEngine`]: tcs_core::TimingEngine
//! [`QueryPlan::signatures`]: tcs_core::QueryPlan::signatures

// unwrap/expect are denied workspace-wide (see [workspace.lints] in the
// root manifest): every unwrap/expect must be either proven unreachable
// (let-else + debug_assert) or turned into a typed error.
#![forbid(unsafe_code)]

pub mod engine;
pub mod fault;
pub mod shard;

pub use engine::{
    DispatchMode, MultiQueryEngine, MultiStats, QueryId, QueryStats, ShareMode, TemplateStats,
};
pub use fault::{FaultPolicy, OverloadPolicy, QueryFault, ShardHealth};
pub use shard::ShardedMultiEngine;
pub use tcs_core::{IngestError, IngestStats, OrderPolicy};
