//! Fault-domain types: what a per-query panic becomes, what an overloaded
//! channel does, and what the health report carries.
//!
//! The failure model (crate docs, "Failure model") separates three fault
//! classes with three different blast radii:
//!
//! 1. **Query faults** — a panic inside one query's per-arrival work.
//!    Under [`FaultPolicy::Quarantine`] the registry catches it, records
//!    a [`QueryFault`], and unregisters the offender; every other query
//!    keeps serving. The dispatcher never observes a dead channel for
//!    this class.
//! 2. **Worker faults** — a panic outside the per-query isolation
//!    boundary kills a whole shard worker. The supervisor inside
//!    [`ShardedMultiEngine::process`](crate::ShardedMultiEngine::process)
//!    rebuilds the shard and re-homes its surviving queries
//!    ([`ShardHealth::restarts`]).
//! 3. **Overload** — a worker that cannot keep up fills its channel. The
//!    [`OverloadPolicy`] decides whether the dispatcher waits or sheds,
//!    and [`ShardHealth`] counts what was shed.

use crate::engine::QueryId;
use std::any::Any;

/// What a panic inside one query's per-arrival work becomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Let the panic unwind to the caller (default for a bare
    /// [`MultiQueryEngine`](crate::MultiQueryEngine) — a single-threaded
    /// embedder usually wants the crash, and the catch boundary costs
    /// nothing when unused).
    #[default]
    Propagate,
    /// Catch the panic, record a [`QueryFault`], unregister the offending
    /// query and keep serving the rest (default for the shards of a
    /// [`ShardedMultiEngine`](crate::ShardedMultiEngine) — one tenant's
    /// bug must not take down its neighbours).
    Quarantine,
}

/// What the dispatcher does when a shard worker's channel is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block until the worker drains (default — lossless, the slowest
    /// shard paces the stream).
    #[default]
    Backpressure,
    /// Evict the *oldest* queued edge to admit the new one — bounded
    /// staleness: the worker always sees the freshest traffic, losing
    /// history ([`ShardHealth::shed_oldest`] counts the losses).
    ShedOldest,
    /// Drop the *newest* edge (the arrival itself) when the buffer is
    /// full — bounded effort: queued work is never wasted, fresh traffic
    /// is sacrificed ([`ShardHealth::shed_newest`] counts the losses).
    ShedNewest,
}

/// One quarantined query: the panic that condemned it and where in the
/// stream it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryFault {
    /// The quarantined query (already unregistered when this is visible).
    pub qid: QueryId,
    /// The panic payload, stringified (`String`/`&str` payloads verbatim,
    /// anything else a placeholder).
    pub payload: String,
    /// Arrival ordinal at the owning registry when the fault fired — the
    /// registry's `edges_seen` count, i.e. the shard-local substream
    /// position under a sharded front-end.
    pub edge_seq: u64,
}

/// Per-shard health counters reported by
/// [`ShardedMultiEngine::stats`](crate::ShardedMultiEngine::stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard index.
    pub shard: usize,
    /// Edges evicted from this shard's queue ([`OverloadPolicy::ShedOldest`]).
    pub shed_oldest: u64,
    /// Arrivals dropped at this shard's full queue
    /// ([`OverloadPolicy::ShedNewest`]).
    pub shed_newest: u64,
    /// Times the supervisor rebuilt this shard after its worker died.
    pub restarts: u64,
}

/// Stringifies a panic payload: `String` and `&str` come back verbatim
/// (failpoint-injected panics carry `String`s), anything else becomes a
/// placeholder — the fault log must never lose a record to an exotic
/// payload type.
pub(crate) fn payload_str(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn payloads_stringify() {
        let s: Box<dyn Any + Send> = Box::new(String::from("boom"));
        assert_eq!(payload_str(s.as_ref()), "boom");
        let s: Box<dyn Any + Send> = Box::new("static boom");
        assert_eq!(payload_str(s.as_ref()), "static boom");
        let s: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(payload_str(s.as_ref()), "<non-string panic payload>");
    }
}
