//! The sharded concurrent front-end: queries partitioned across worker
//! threads, shared-nothing shards, signature-routed fan-out.
//!
//! Serial [`MultiQueryEngine`] throughput is bounded by one core; a
//! multi-tenant deployment has thousands of independent queries and
//! machines with many cores. [`ShardedMultiEngine`] homes every query on
//! exactly one shard (see the crate docs, "Shard ownership"), gives each
//! shard its own window + snapshot + dispatch index, and during
//! [`ShardedMultiEngine::process`] streams each edge over a bounded
//! channel (`tcs_concurrent::chan`) to exactly the shards whose routing
//! entry says some homed query can react. Shards never exchange state,
//! so the only synchronization is the channels' own back-pressure.

use crate::engine::{MultiQueryEngine, MultiStats, QueryId};
use std::collections::HashMap;
use tcs_concurrent::chan;
use tcs_core::store::MatchStore;
use tcs_core::{MsTreeStore, QueryPlan};
use tcs_graph::{ELabel, MatchRecord, StreamEdge, VLabel};

/// A pool of shared-nothing [`MultiQueryEngine`] shards behind a
/// signature-routed fan-out. Registration churn happens between
/// [`ShardedMultiEngine::process`] calls (the front-end is single-threaded
/// outside `process`); each `process` call runs one worker thread per
/// shard.
pub struct ShardedMultiEngine<S: MatchStore = MsTreeStore> {
    shards: Vec<MultiQueryEngine<S>>,
    /// signature → shard indices with ≥ 1 homed query reacting to it
    /// (the union of the shards' own dispatch indexes, at shard
    /// granularity).
    route: HashMap<(VLabel, VLabel, ELabel), Vec<usize>>,
    /// query → its home shard (queries never migrate).
    home: HashMap<QueryId, usize>,
    /// Homed queries per shard, for least-loaded placement.
    loads: Vec<usize>,
    /// Arrivals fed through [`ShardedMultiEngine::process`] — the
    /// front-end's own count, since per-shard counts only cover routed
    /// substreams (and overlap when shards share a signature).
    edges_fed: u64,
}

impl<S: MatchStore> ShardedMultiEngine<S> {
    /// A front-end of `n_shards` empty shards over windows of the given
    /// duration. Shard `i` allocates [`QueryId`]s `i, i + n, i + 2n, …`,
    /// so ids are globally unique without coordination.
    pub fn new(window: u64, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let shards = (0..n_shards)
            .map(|i| {
                MultiQueryEngine::with_id_stride(
                    window,
                    crate::DispatchMode::Signature,
                    i as u64,
                    n_shards as u64,
                )
            })
            .collect();
        ShardedMultiEngine {
            shards,
            route: HashMap::new(),
            home: HashMap::new(),
            loads: vec![0; n_shards],
            edges_fed: 0,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered queries across all shards.
    pub fn n_queries(&self) -> usize {
        self.home.len()
    }

    /// The home shard of a registered query.
    pub fn shard_of(&self, id: QueryId) -> Option<usize> {
        self.home.get(&id).copied()
    }

    /// Homes a compiled plan on the least-loaded shard and registers it
    /// there; returns its globally unique id.
    pub fn register(&mut self, plan: QueryPlan) -> QueryId {
        let shard = self
            .loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &n)| n)
            .map(|(i, _)| i)
            .expect("at least one shard");
        let sigs: Vec<_> = plan.signatures().collect();
        let id = self.shards[shard].register(plan);
        self.home.insert(id, shard);
        self.loads[shard] += 1;
        for sig in sigs {
            let bucket = self.route.entry(sig).or_default();
            if !bucket.contains(&shard) {
                bucket.push(shard);
            }
        }
        id
    }

    /// Unregisters a query from its home shard and prunes routing entries
    /// the shard no longer needs. Returns false if the id is unknown.
    pub fn unregister(&mut self, id: QueryId) -> bool {
        let Some(shard) = self.home.remove(&id) else {
            return false;
        };
        let removed = self.shards[shard].unregister(id);
        debug_assert!(removed, "home table and shard registry agree");
        self.loads[shard] -= 1;
        // Re-derive the routing table from the shards' dispatch indexes:
        // registration churn is rare next to stream volume, and a full
        // rebuild cannot leave a stale entry behind.
        self.route.clear();
        for (i, sh) in self.shards.iter().enumerate() {
            for sig in sh.signatures() {
                self.route.entry(sig).or_default().push(i);
            }
        }
        removed
    }

    /// Streams a batch of edges through the shard pool: one worker thread
    /// per shard, each edge fanned out to exactly the shards that can
    /// react (an edge no query reacts to costs one routing lookup on the
    /// front-end thread and nothing anywhere else). Returns the completed
    /// `(query, match)` pairs; order across shards is unspecified, within
    /// one query it is stream order.
    pub fn process(&mut self, stream: &[StreamEdge]) -> Vec<(QueryId, MatchRecord)>
    where
        S: Send,
    {
        self.edges_fed += stream.len() as u64;
        let route = &self.route;
        let mut outs: Vec<Vec<(QueryId, MatchRecord)>> = Vec::with_capacity(self.shards.len());
        std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(self.shards.len());
            let mut handles = Vec::with_capacity(self.shards.len());
            for sh in self.shards.iter_mut() {
                let (tx, rx) = chan::bounded::<StreamEdge>(1024);
                txs.push(tx);
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    while let Ok(e) = rx.recv() {
                        out.extend(sh.advance(e));
                    }
                    out
                }));
            }
            for &e in stream {
                if let Some(shards) = route.get(&e.signature()) {
                    for &s in shards {
                        txs[s].send(e).expect("shard worker alive");
                    }
                }
            }
            // Dropping the senders disconnects the channels; workers
            // drain what is buffered and return their matches.
            drop(txs);
            for h in handles {
                outs.push(h.join().expect("shard worker did not panic"));
            }
        });
        outs.into_iter().flatten().collect()
    }

    /// Merged per-query stats across shards. Space is exact (each shard's
    /// snapshot appears once, per-query stores on top) and `edges_seen`
    /// is the front-end's own arrival count (per-shard counts would
    /// double-count signatures homed on several shards and miss edges no
    /// query reacts to). Caveat on the per-query edge counters: each
    /// shard only sees its routed substream, so a query's
    /// `edges_processed`/`edges_discarded` are relative to its home
    /// shard's deliveries, not the full stream — match, partial and join
    /// counters are exact.
    pub fn stats(&self) -> MultiStats {
        let mut merged = MultiStats::default();
        for sh in &self.shards {
            let st = sh.stats();
            merged.queries.extend(st.queries);
            merged.snapshot_bytes += st.snapshot_bytes;
        }
        merged.edges_seen = self.edges_fed;
        merged.queries.sort_by_key(|q| q.id);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcs_core::PlanOptions;
    use tcs_graph::query::QueryEdge;
    use tcs_graph::QueryGraph;

    fn tenant_query(t: u16) -> QueryGraph {
        QueryGraph::new(
            vec![VLabel(3 * t), VLabel(3 * t + 1), VLabel(3 * t + 2)],
            vec![
                QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
                QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            ],
            &[(0, 1)],
        )
        .unwrap()
    }

    fn plan(t: u16) -> QueryPlan {
        QueryPlan::build(tenant_query(t), PlanOptions::timing())
    }

    fn tenant_stream(n_tenants: u16, rounds: u64) -> Vec<StreamEdge> {
        let mut out = Vec::new();
        let mut ts = 0u64;
        for r in 0..rounds {
            let t = (r % n_tenants as u64) as u16;
            ts += 1;
            if (r / n_tenants as u64).is_multiple_of(2) {
                out.push(StreamEdge::new(
                    ts,
                    100 + r as u32,
                    3 * t,
                    200 + t as u32,
                    3 * t + 1,
                    0,
                    ts,
                ));
            } else {
                out.push(StreamEdge::new(
                    ts,
                    200 + t as u32,
                    3 * t + 1,
                    300 + r as u32,
                    3 * t + 2,
                    0,
                    ts,
                ));
            }
        }
        out
    }

    #[test]
    fn sharded_equals_serial_registry() {
        let stream = tenant_stream(6, 240);
        let mut serial: MultiQueryEngine = MultiQueryEngine::new(25);
        let serial_ids: Vec<_> = (0..6u16).map(|t| serial.register(plan(t))).collect();
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(25, 3);
        let sharded_ids: Vec<_> = (0..6u16).map(|t| sharded.register(plan(t))).collect();
        assert_eq!(sharded.n_queries(), 6);

        let mut want: Vec<(usize, MatchRecord)> = Vec::new();
        for &e in &stream {
            for (qid, m) in serial.advance(e) {
                let tenant = serial_ids.iter().position(|&x| x == qid).unwrap();
                want.push((tenant, m));
            }
        }
        let mut got: Vec<(usize, MatchRecord)> = sharded
            .process(&stream)
            .into_iter()
            .map(|(qid, m)| (sharded_ids.iter().position(|&x| x == qid).unwrap(), m))
            .collect();
        want.sort();
        got.sort();
        assert_eq!(want, got);
        assert!(!want.is_empty(), "the workload produces matches");
    }

    #[test]
    fn registration_churn_between_batches() {
        let stream = tenant_stream(4, 160);
        let (first, second) = stream.split_at(80);
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(25, 2);
        let q0 = sharded.register(plan(0));
        let q1 = sharded.register(plan(1));
        let out1 = sharded.process(first);
        assert!(out1.iter().any(|(q, _)| *q == q0));
        assert!(out1.iter().any(|(q, _)| *q == q1));
        // Tenant 1 leaves, tenant 2 arrives between batches.
        assert!(sharded.unregister(q1));
        let q2 = sharded.register(plan(2));
        let out2 = sharded.process(second);
        assert!(out2.iter().all(|(q, _)| *q != q1), "unregistered query stays silent");
        assert!(out2.iter().any(|(q, _)| *q == q2), "late registration matches fresh patterns");
        // Stats merge across shards without losing anyone.
        let st = sharded.stats();
        assert_eq!(st.queries.len(), 2);
        assert!(st.space_bytes() >= st.snapshot_bytes);
    }

    #[test]
    fn least_loaded_placement_spreads_queries() {
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(10, 4);
        let ids: Vec<_> = (0..8u16).map(|t| sharded.register(plan(t))).collect();
        let mut per_shard = vec![0usize; 4];
        for &id in &ids {
            per_shard[sharded.shard_of(id).unwrap()] += 1;
        }
        assert_eq!(per_shard, vec![2, 2, 2, 2]);
        // Ids are globally unique and strided.
        let mut sorted: Vec<u64> = ids.iter().map(|q| q.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }
}
