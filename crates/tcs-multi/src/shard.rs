//! The sharded concurrent front-end: queries partitioned across worker
//! threads, shared-nothing shards, signature-routed fan-out — with the
//! fault-tolerance layer on top.
//!
//! Serial [`MultiQueryEngine`] throughput is bounded by one core; a
//! multi-tenant deployment has thousands of independent queries and
//! machines with many cores. [`ShardedMultiEngine`] homes every query on
//! exactly one shard (see the crate docs, "Shard ownership"), gives each
//! shard its own window + snapshot + dispatch index, and during
//! [`ShardedMultiEngine::process`] streams **chunks** of edges over a
//! bounded channel (`tcs_concurrent::chan`) to exactly the shards whose
//! routing entry says some homed query can react: the dispatcher
//! accumulates each shard's routed substream into a pending chunk and
//! flushes it when it reaches [`CHUNK`] edges (and at end of batch), so
//! workers pay one channel round-trip and one batched
//! [`MultiQueryEngine::advance_batch`] call per chunk instead of one
//! `advance` per edge. Shards never exchange state, so the only
//! synchronization is the channels' own back-pressure.
//!
//! # Fault handling
//!
//! Three fault classes, three blast radii (crate docs, "Failure model"):
//!
//! * **Query faults.** Shards run under [`FaultPolicy::Quarantine`]: a
//!   panic inside one query's per-arrival work condemns only that query.
//!   The shard records a [`QueryFault`](crate::QueryFault) and keeps
//!   serving; the worker thread and its channel stay alive, so the
//!   dispatcher never observes a dead channel for this class. After each
//!   batch the front-end reconciles shard quarantines into its own
//!   tables (homing, loads, routing).
//! * **Worker faults.** A panic *outside* the per-query boundary (e.g.
//!   the `worker-loop` failpoint) kills the whole worker thread; its
//!   channel reports disconnected and the dispatcher simply stops
//!   feeding that shard for the rest of the batch — other shards are
//!   unaffected. After the batch the supervisor rebuilds the dead shard
//!   and **re-homes its surviving queries** under their original ids;
//!   the shard's window state is lost, so re-homed queries restart
//!   fresh, exactly like a late registration
//!   ([`ShardHealth::restarts`](crate::ShardHealth::restarts) counts
//!   rebuilds).
//! * **Overload.** The dispatcher→worker channels apply the configured
//!   [`OverloadPolicy`]: lossless back-pressure (default), or bounded
//!   shedding with per-shard loss counters. Shedding happens at chunk
//!   granularity (a full channel loses a whole pending chunk), but the
//!   loss counters stay in **edges** — a shed chunk adds its length.
//!
//! # Per-shard substream counters (contract)
//!
//! Each shard's window sees only the edges routed to it, so a query's
//! `edges_processed`/`edges_discarded` in [`ShardedMultiEngine::stats`]
//! are **relative to its home shard's substream**, not the full stream —
//! match, partial and join counters are exact either way. This is the
//! documented contract of `stats()`; use
//! [`ShardedMultiEngine::stats_normalized`] to scale the edge counters to
//! full-stream semantics (what N independent engines fed every admitted
//! edge would report).

use crate::engine::{MultiQueryEngine, MultiStats, QueryId, ShareMode};
use crate::fault::{payload_str, FaultPolicy, OverloadPolicy, ShardHealth};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tcs_concurrent::chan::{self, TrySendError};
use tcs_core::fail_point;
use tcs_core::failpoints::sites;
use tcs_core::store::MatchStore;
use tcs_core::{
    IngestError, IngestGate, IngestStats, MsTreeStore, OrderPolicy, PlanFingerprint, QueryPlan,
};
use tcs_graph::{ELabel, MatchRecord, StreamEdge, VLabel};
use tcs_telemetry::{EventKind, Recorder, ShardLoad};

/// Edges per dispatcher→worker chunk. Large enough that workers amortize
/// channel synchronization and run the batched
/// [`MultiQueryEngine::advance_batch`] ingest path over same-signature
/// runs; small enough that a tight channel capacity
/// ([`ShardedMultiEngine::set_channel_capacity`]) still exerts
/// back-pressure and shedding on short streams.
pub const CHUNK: usize = 16;

/// One dispatcher→worker unit: a routed sub-batch plus — telemetry only
/// — its enqueue instant, so a shard can charge queue wait to detection
/// latency ([`MultiQueryEngine::try_advance_batch_stamped`]).
struct Chunk {
    at: Option<Instant>,
    edges: Vec<StreamEdge>,
}

/// Sends one pending chunk to a worker under the configured overload
/// policy. A disconnected channel (dead worker) retires the sender; loss
/// counters are incremented by the shed chunk's length, keeping
/// [`ShardHealth`] counters in edges. While a recorder is armed the
/// chunk is stamped at enqueue, the queue-depth high-water mark is
/// tracked, and every shed chunk logs one structured event.
fn flush_chunk(
    s: usize,
    txs: &mut [Option<chan::Sender<Chunk>>],
    edges: Vec<StreamEdge>,
    overload: OverloadPolicy,
    health: &mut [ShardHealth],
    rec: Option<&Recorder>,
    hwm: &mut [u64],
) {
    let Some(tx) = txs[s].as_ref() else {
        return;
    };
    if rec.is_some() {
        // Depth including this enqueue — a load gauge, racy by nature
        // (the worker drains concurrently).
        hwm[s] = hwm[s].max(tx.len() as u64 + 1);
    }
    let chunk = Chunk { at: rec.map(|_| Instant::now()), edges };
    match overload {
        OverloadPolicy::Backpressure => {
            if tx.send(chunk).is_err() {
                txs[s] = None;
            }
        }
        OverloadPolicy::ShedNewest => match tx.try_send(chunk) {
            Ok(()) => {}
            Err(TrySendError::Full(c)) => {
                health[s].shed_newest += c.edges.len() as u64;
                if let Some(rec) = rec {
                    rec.event(EventKind::Shed {
                        shard: s as u64,
                        edges: c.edges.len() as u64,
                        newest: true,
                    });
                }
            }
            Err(TrySendError::Disconnected(_)) => txs[s] = None,
        },
        OverloadPolicy::ShedOldest => match tx.send_evict(chunk) {
            Ok(None) => {}
            Ok(Some(c)) => {
                health[s].shed_oldest += c.edges.len() as u64;
                if let Some(rec) = rec {
                    rec.event(EventKind::Shed {
                        shard: s as u64,
                        edges: c.edges.len() as u64,
                        newest: false,
                    });
                }
            }
            Err(_) => txs[s] = None,
        },
    }
}

/// A pool of shared-nothing [`MultiQueryEngine`] shards behind a
/// signature-routed fan-out. Registration churn happens between
/// [`ShardedMultiEngine::process`] calls (the front-end is single-threaded
/// outside `process`); each `process` call runs one worker thread per
/// shard, supervised as described in the module docs.
pub struct ShardedMultiEngine<S: MatchStore = MsTreeStore> {
    shards: Vec<MultiQueryEngine<S>>,
    /// signature → shard indices with ≥ 1 homed query reacting to it
    /// (the union of the shards' own dispatch indexes, at shard
    /// granularity).
    route: HashMap<(VLabel, VLabel, ELabel), Vec<usize>>,
    /// query → its home shard (queries only migrate with their shard on a
    /// supervisor rebuild, never individually).
    home: HashMap<QueryId, usize>,
    /// Engines homed per shard, for least-loaded placement: one unit per
    /// *template* under [`ShareMode::Shared`] (duplicate registrations
    /// ride their template's shard for free), one per query under
    /// [`ShareMode::Private`].
    loads: Vec<usize>,
    /// canonical fingerprint → the shard its shared template lives on
    /// ([`ShareMode::Shared`] only): duplicate registrations must land
    /// on the same shard or they cannot share an engine.
    template_home: HashMap<PlanFingerprint, usize>,
    /// canonical fingerprint → live subscriber count (the refcount that
    /// retires a [`ShardedMultiEngine::template_home`] entry).
    template_refs: HashMap<PlanFingerprint, usize>,
    /// query → its canonical fingerprint ([`ShareMode::Shared`] only).
    fp_of: HashMap<QueryId, PlanFingerprint>,
    /// Whether fingerprint-identical registrations share one engine.
    share: ShareMode,
    /// Admitted arrivals fed through [`ShardedMultiEngine::process`] —
    /// the front-end's own count, since per-shard counts only cover
    /// routed substreams (and overlap when shards share a signature).
    edges_fed: u64,
    /// Window duration, kept so the supervisor can rebuild a shard.
    window: u64,
    /// The stream-boundary gate: full-batch validation before fan-out.
    gate: IngestGate,
    /// What the dispatcher does at a full worker channel.
    overload: OverloadPolicy,
    /// Dispatcher→worker channel capacity.
    channel_cap: usize,
    /// Per-shard shed/restart counters.
    health: Vec<ShardHealth>,
    /// How many entries of each shard's fault log the front-end has
    /// already reconciled into its homing/routing tables.
    faults_seen: Vec<usize>,
    /// Value of `edges_fed` when each live query registered — the base
    /// for [`ShardedMultiEngine::stats_normalized`].
    fed_base: HashMap<QueryId, u64>,
    /// The telemetry seam: `None` (default) until
    /// [`ShardedMultiEngine::set_recorder`] arms it.
    tel: Option<Arc<Recorder>>,
    /// Telemetry sampling tick for front-end hot-key recording.
    tel_tick: u32,
    /// Edges routed to each shard since construction (telemetry gauge;
    /// shed chunks still count — they were routed).
    routed: Vec<u64>,
    /// Per-shard dispatcher→worker queue-depth high-water mark, in
    /// chunks (telemetry gauge, tracked only while a recorder is armed).
    queue_hwm: Vec<u64>,
}

impl<S: MatchStore> ShardedMultiEngine<S> {
    /// A front-end of `n_shards` empty shards over windows of the given
    /// duration. Shard `i` allocates [`QueryId`]s `i, i + n, i + 2n, …`,
    /// so ids are globally unique without coordination. Shards run under
    /// [`FaultPolicy::Quarantine`].
    pub fn new(window: u64, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let shards = (0..n_shards)
            .map(|i| {
                let mut sh = MultiQueryEngine::with_id_stride(
                    window,
                    crate::DispatchMode::Signature,
                    i as u64,
                    n_shards as u64,
                );
                sh.set_fault_policy(FaultPolicy::Quarantine);
                sh
            })
            .collect();
        ShardedMultiEngine {
            shards,
            route: HashMap::new(),
            home: HashMap::new(),
            loads: vec![0; n_shards],
            template_home: HashMap::new(),
            template_refs: HashMap::new(),
            fp_of: HashMap::new(),
            share: ShareMode::default(),
            edges_fed: 0,
            window,
            gate: IngestGate::new(window, OrderPolicy::default()),
            overload: OverloadPolicy::default(),
            channel_cap: 1024,
            health: (0..n_shards)
                .map(|shard| ShardHealth { shard, ..Default::default() })
                .collect(),
            faults_seen: vec![0; n_shards],
            fed_base: HashMap::new(),
            tel: None,
            tel_tick: 0,
            routed: vec![0; n_shards],
            queue_hwm: vec![0; n_shards],
        }
    }

    /// Arms telemetry across the front-end and every shard. The
    /// front-end records endpoint hot-key traffic once at routing time,
    /// per-shard load gauges (routed edges, queue-depth high-water mark,
    /// shed, restarts) after each batch, and shed / worker-restart
    /// events; shards record advance latency, detection latency (chunks
    /// are stamped at enqueue, so queue wait counts) and lifecycle
    /// events, with shard-level hot-key counting off — an edge fanned to
    /// several shards would otherwise be counted once per shard.
    /// Telemetry never perturbs [`MultiStats`] or the match stream.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        for sh in &mut self.shards {
            sh.set_recorder_scoped(Arc::clone(&rec), false);
        }
        self.tel = Some(rec);
    }

    /// Disarms telemetry everywhere; the recorder keeps what it has.
    pub fn clear_recorder(&mut self) {
        self.tel = None;
        for sh in &mut self.shards {
            sh.clear_recorder();
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered queries across all shards.
    pub fn n_queries(&self) -> usize {
        self.home.len()
    }

    /// Number of live shared templates (engines actually running) across
    /// all shards.
    pub fn n_templates(&self) -> usize {
        self.shards.iter().map(MultiQueryEngine::n_templates).sum()
    }

    /// The active sharing mode.
    pub fn share_mode(&self) -> ShareMode {
        self.share
    }

    /// Sets the sharing mode on the front-end and every shard — see
    /// [`MultiQueryEngine::set_share_mode`]. Must be called before the
    /// first registration.
    pub fn set_share_mode(&mut self, share: ShareMode) {
        assert!(
            self.home.is_empty(),
            "share mode is fixed at first registration; set it on an empty front-end"
        );
        self.share = share;
        for sh in &mut self.shards {
            sh.set_share_mode(share);
        }
    }

    /// The home shard of a registered query.
    pub fn shard_of(&self, id: QueryId) -> Option<usize> {
        self.home.get(&id).copied()
    }

    /// The active out-of-order arrival policy of the front-end gate.
    pub fn order_policy(&self) -> OrderPolicy {
        self.gate.policy()
    }

    /// Replaces the front-end gate's out-of-order policy (effective from
    /// the next batch). Shard-local gates never reject: routed substreams
    /// of the sanitized stream are nondecreasing by construction.
    pub fn set_order_policy(&mut self, policy: OrderPolicy) {
        self.gate.set_policy(policy);
    }

    /// Ingestion-boundary counters of the front-end gate.
    pub fn ingest_stats(&self) -> IngestStats {
        self.gate.stats()
    }

    /// The active overload policy (default
    /// [`OverloadPolicy::Backpressure`]).
    pub fn overload_policy(&self) -> OverloadPolicy {
        self.overload
    }

    /// Replaces the overload policy (effective from the next batch).
    pub fn set_overload_policy(&mut self, policy: OverloadPolicy) {
        self.overload = policy;
    }

    /// Resizes the dispatcher→worker channels (effective from the next
    /// batch; clamped to ≥ 1). Capacity counts **chunks** of up to
    /// [`CHUNK`] edges, not single edges. Smaller buffers trade
    /// throughput for earlier shedding/back-pressure.
    pub fn set_channel_capacity(&mut self, cap: usize) {
        self.channel_cap = cap.max(1);
    }

    /// Every quarantined query across all shards, in shard order (each
    /// shard's log in its own fault order).
    pub fn faults(&self) -> Vec<crate::QueryFault> {
        self.shards.iter().flat_map(|sh| sh.faults().iter().cloned()).collect()
    }

    /// The least-loaded shard (engines, not queries — see `loads`).
    fn least_loaded(&self) -> usize {
        self.loads.iter().enumerate().min_by_key(|&(_, &n)| n).map(|(i, _)| i).unwrap_or_default()
        // n_shards >= 1 — the constructor asserts it
    }

    /// Homes a compiled plan and registers it; returns its globally
    /// unique id. Under [`ShareMode::Shared`] a plan whose canonical
    /// fingerprint already has a live template lands on that template's
    /// shard (duplicates must cohabit to share an engine) and adds no
    /// load; a new template goes to the least-loaded shard and counts
    /// one load unit.
    pub fn register(&mut self, plan: QueryPlan) -> QueryId {
        let fp = match self.share {
            ShareMode::Shared => Some(PlanFingerprint::of(&plan.query)),
            ShareMode::Private => None,
        };
        let shard = fp
            .as_ref()
            .and_then(|fp| self.template_home.get(fp).copied())
            .unwrap_or_else(|| self.least_loaded());
        let sigs: Vec<_> = plan.signatures().collect();
        let id = self.shards[shard].register(plan);
        self.home.insert(id, shard);
        self.fed_base.insert(id, self.edges_fed);
        match fp {
            Some(fp) => {
                let refs = self.template_refs.entry(fp.clone()).or_insert(0);
                *refs += 1;
                if *refs == 1 {
                    self.template_home.insert(fp.clone(), shard);
                    self.loads[shard] += 1;
                }
                self.fp_of.insert(id, fp);
            }
            None => self.loads[shard] += 1,
        }
        for sig in sigs {
            let bucket = self.route.entry(sig).or_default();
            if !bucket.contains(&shard) {
                bucket.push(shard);
            }
        }
        id
    }

    /// Releases one query's load accounting: under sharing, the last
    /// subscriber of a template frees its load unit and its homing entry;
    /// a private query frees its own.
    fn release_load(&mut self, id: QueryId, shard: usize) {
        match self.fp_of.remove(&id) {
            Some(fp) => {
                let Some(refs) = self.template_refs.get_mut(&fp) else {
                    debug_assert!(false, "fingerprinted query has a template refcount");
                    return;
                };
                *refs -= 1;
                if *refs == 0 {
                    self.template_refs.remove(&fp);
                    self.template_home.remove(&fp);
                    self.loads[shard] -= 1;
                }
            }
            None => self.loads[shard] -= 1,
        }
    }

    /// Unregisters a query from its home shard and prunes routing entries
    /// the shard no longer needs. Returns false if the id is unknown.
    pub fn unregister(&mut self, id: QueryId) -> bool {
        let Some(shard) = self.home.remove(&id) else {
            return false;
        };
        let removed = self.shards[shard].unregister(id);
        debug_assert!(removed, "home table and shard registry agree");
        self.release_load(id, shard);
        self.fed_base.remove(&id);
        self.rebuild_route();
        removed
    }

    /// Re-derives the routing table from the shards' dispatch indexes:
    /// registration churn and quarantines are rare next to stream volume,
    /// and a full rebuild cannot leave a stale entry behind.
    fn rebuild_route(&mut self) {
        self.route.clear();
        for (i, sh) in self.shards.iter().enumerate() {
            for sig in sh.signatures() {
                self.route.entry(sig).or_default().push(i);
            }
        }
    }

    /// Streams a batch of edges through the shard pool: one worker thread
    /// per shard, each edge fanned out — in [`CHUNK`]-sized sub-batches —
    /// to exactly the shards that can react (an edge no query reacts to
    /// costs one routing lookup on the front-end thread and nothing
    /// anywhere else). Returns the completed
    /// `(query, match)` pairs; order across shards is unspecified, within
    /// one query it is stream order.
    ///
    /// Panics on invalid input ([`IngestError`]) — stream owners that
    /// must survive a misbehaving source use
    /// [`ShardedMultiEngine::try_process`] or a lenient [`OrderPolicy`].
    pub fn process(&mut self, stream: &[StreamEdge]) -> Vec<(QueryId, MatchRecord)>
    where
        S: Send,
    {
        match self.try_process(stream) {
            Ok(out) => out,
            Err(err) => panic!("ShardedMultiEngine::process fed invalid input: {err}"),
        }
    }

    /// [`ShardedMultiEngine::process`] with the ingestion boundary
    /// surfaced, **batch-atomically**: the whole batch is validated
    /// through the front-end gate before any edge is dispatched, so on
    /// `Err` *no* edge of the batch was admitted anywhere — fix or drop
    /// the offender and resubmit. Out-of-order arrivals follow the gate's
    /// [`OrderPolicy`]; edges it clamps or drops are rewritten/silently
    /// removed before fan-out.
    pub fn try_process(
        &mut self,
        stream: &[StreamEdge],
    ) -> Result<Vec<(QueryId, MatchRecord)>, IngestError>
    where
        S: Send,
    {
        // Validate on a staged copy of the gate; commit only if the whole
        // batch passes. The clone is proportional to the live window —
        // cheap next to dispatching the batch.
        let mut staged = self.gate.clone();
        let mut sanitized = Vec::with_capacity(stream.len());
        for &e in stream {
            if let Some(e) = staged.admit(e)? {
                sanitized.push(e);
            }
        }
        self.gate = staged;
        self.edges_fed += sanitized.len() as u64;
        if let Some(rec) = &self.tel {
            // Hot keys are counted HERE, once per sanitized edge (on the
            // latency sampling cadence) — shards run with hot-key
            // recording off so multi-shard fan-out cannot double-count.
            let every = rec.sample_every();
            for e in &sanitized {
                self.tel_tick += 1;
                if self.tel_tick >= every {
                    self.tel_tick = 0;
                    rec.record_key(u64::from(e.src.0));
                    if e.dst != e.src {
                        rec.record_key(u64::from(e.dst.0));
                    }
                }
            }
        }

        let n = self.shards.len();
        let mut outs: Vec<Vec<(QueryId, MatchRecord)>> = Vec::with_capacity(n);
        let mut dead_payloads: Vec<(usize, String)> = Vec::new();
        {
            let route = &self.route;
            let overload = self.overload;
            let cap = self.channel_cap;
            let health = &mut self.health;
            let rec = self.tel.as_deref();
            let routed = &mut self.routed;
            let hwm = &mut self.queue_hwm;
            std::thread::scope(|scope| {
                let mut txs = Vec::with_capacity(n);
                let mut handles = Vec::with_capacity(n);
                for (i, sh) in self.shards.iter_mut().enumerate() {
                    let (tx, rx) = chan::bounded::<Chunk>(cap);
                    txs.push(Some(tx));
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            // The supervisor's target: a panic armed here
                            // (tag = shard index) kills the whole worker,
                            // not one query.
                            fail_point!(sites::WORKER_LOOP, i as u64);
                            match rx.recv() {
                                Ok(chunk) => {
                                    match sh.try_advance_batch_stamped(&chunk.edges, chunk.at) {
                                        Ok(ms) => out.extend(ms),
                                        Err(err) => panic!("sanitized stream rejected: {err}"),
                                    }
                                }
                                Err(_) => break,
                            }
                        }
                        out
                    }));
                }
                // Per-shard pending chunks: routed edges accumulate here
                // and flush as whole sub-batches, so workers run the
                // batched ingest path (signature runs, shared probe
                // cache) instead of one `advance` per edge. A dead
                // worker's channel reports disconnected; `flush_chunk`
                // retires it (the supervisor deals with the corpse after
                // the batch) — a survivable fault never kills the
                // dispatch loop.
                let mut pending: Vec<Vec<StreamEdge>> = vec![Vec::new(); n];
                for &e in &sanitized {
                    let Some(shards) = route.get(&e.signature()) else {
                        continue;
                    };
                    for &s in shards {
                        if txs[s].is_none() {
                            continue;
                        }
                        routed[s] += 1;
                        pending[s].push(e);
                        if pending[s].len() >= CHUNK {
                            let chunk = std::mem::take(&mut pending[s]);
                            flush_chunk(s, &mut txs, chunk, overload, health, rec, hwm);
                        }
                    }
                }
                for (s, chunk) in pending.into_iter().enumerate() {
                    if !chunk.is_empty() {
                        flush_chunk(s, &mut txs, chunk, overload, health, rec, hwm);
                    }
                }
                // Dropping the senders disconnects the channels; workers
                // drain what is buffered and return their matches.
                drop(txs);
                for (i, h) in handles.into_iter().enumerate() {
                    match h.join() {
                        Ok(out) => outs.push(out),
                        Err(p) => dead_payloads.push((i, payload_str(&*p))),
                    }
                }
            });
        }
        // Supervisor: rebuild dead shards (restart the worker's engine,
        // re-home its surviving queries under their original ids), then
        // fold shard-level quarantines into the front-end tables.
        for (i, payload) in dead_payloads {
            self.rebuild_shard(i, &payload);
        }
        self.reconcile_quarantines();
        self.publish_shard_loads();
        Ok(outs.into_iter().flatten().collect())
    }

    /// Telemetry: publishes the per-shard load gauges after a batch
    /// (no-op while disarmed).
    fn publish_shard_loads(&self) {
        let Some(rec) = &self.tel else { return };
        for (i, h) in self.health.iter().enumerate() {
            rec.set_shard_load(ShardLoad {
                shard: i as u64,
                edges_routed: self.routed[i],
                queue_depth_hwm: self.queue_hwm[i],
                shed: h.shed_oldest + h.shed_newest,
                restarts: h.restarts,
            });
        }
    }

    /// Replaces a dead shard with a fresh engine continuing the same id
    /// sequence, re-registers its surviving queries under their original
    /// ids, and carries the fault log over. The shard's window state died
    /// with the worker, so re-homed queries restart fresh — the same
    /// semantics as a late registration.
    fn rebuild_shard(&mut self, i: usize, _payload: &str) {
        let stride = self.shards.len() as u64;
        let old = &self.shards[i];
        let mut fresh = MultiQueryEngine::with_id_stride(
            self.window,
            crate::DispatchMode::Signature,
            old.next_raw_id(),
            stride,
        );
        fresh.set_share_mode(self.share);
        fresh.set_fault_policy(FaultPolicy::Quarantine);
        fresh.set_order_policy(old.order_policy());
        fresh.adopt_faults(old.faults().to_vec());
        if let Some(rec) = &self.tel {
            // Re-arm before re-homing so the restart and each re-homed
            // query's registration land in the event log.
            rec.event(EventKind::WorkerRestart { shard: i as u64 });
            fresh.set_recorder_scoped(Arc::clone(rec), false);
        }
        for (qid, plan) in old.registrations() {
            fresh.register_as(qid, plan);
        }
        self.shards[i] = fresh;
        self.health[i].restarts += 1;
    }

    /// Folds shard-level quarantines the front-end has not seen yet into
    /// its homing/load/normalization tables, then rebuilds the routing
    /// table so no stale signature entry survives.
    fn reconcile_quarantines(&mut self) {
        let mut quarantined: Vec<(QueryId, usize)> = Vec::new();
        for (i, sh) in self.shards.iter().enumerate() {
            let log = sh.faults();
            for f in &log[self.faults_seen[i].min(log.len())..] {
                if self.home.remove(&f.qid).is_some() {
                    quarantined.push((f.qid, i));
                    self.fed_base.remove(&f.qid);
                }
            }
            self.faults_seen[i] = log.len();
        }
        for (qid, shard) in quarantined {
            self.release_load(qid, shard);
        }
        self.rebuild_route();
    }

    /// Merged per-query stats across shards. Space is exact (each shard's
    /// snapshot appears once, per-query stores on top) and `edges_seen`
    /// is the front-end's own admitted-arrival count (per-shard counts
    /// would double-count signatures homed on several shards and miss
    /// edges no query reacts to). The report also carries every shard's
    /// fault log, the front-end gate's ingest counters, and per-shard
    /// health.
    ///
    /// **Contract on the per-query edge counters:** each shard only sees
    /// its routed substream, so a query's
    /// `edges_processed`/`edges_discarded` here are relative to its home
    /// shard's deliveries, not the full stream — match, partial and join
    /// counters are exact. [`ShardedMultiEngine::stats_normalized`]
    /// rescales to full-stream counts.
    pub fn stats(&self) -> MultiStats {
        let mut merged = MultiStats::default();
        for sh in &self.shards {
            let st = sh.stats();
            merged.queries.extend(st.queries);
            merged.templates.extend(st.templates);
            merged.snapshot_bytes += st.snapshot_bytes;
            merged.faults.extend(st.faults);
        }
        merged.edges_seen = self.edges_fed;
        merged.ingest = self.gate.stats();
        merged.shards = self.health.clone();
        merged.queries.sort_by_key(|q| q.id);
        merged
    }

    /// [`ShardedMultiEngine::stats`] with the per-query edge counters
    /// scaled to **full-stream** semantics: every admitted arrival since
    /// a query's registration that its home shard did not deliver to it
    /// (not routed, shed, or missed during a worker outage) is counted as
    /// processed-and-discarded — what an independent engine fed the whole
    /// sanitized stream would have done with it. Match, partial and join
    /// counters are identical to [`ShardedMultiEngine::stats`].
    pub fn stats_normalized(&self) -> MultiStats {
        let mut st = self.stats();
        for q in &mut st.queries {
            let Some(&base) = self.fed_base.get(&q.id) else {
                debug_assert!(false, "registered query has a fed_base entry");
                continue;
            };
            let since = self.edges_fed - base;
            let extra = since.saturating_sub(q.stats.edges_processed);
            q.stats.edges_processed += extra;
            q.stats.edges_discarded += extra;
        }
        st
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use tcs_core::PlanOptions;
    use tcs_graph::query::QueryEdge;
    use tcs_graph::QueryGraph;

    fn tenant_query(t: u16) -> QueryGraph {
        QueryGraph::new(
            vec![VLabel(3 * t), VLabel(3 * t + 1), VLabel(3 * t + 2)],
            vec![
                QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
                QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            ],
            &[(0, 1)],
        )
        .unwrap()
    }

    fn plan(t: u16) -> QueryPlan {
        QueryPlan::build(tenant_query(t), PlanOptions::timing())
    }

    fn tenant_stream(n_tenants: u16, rounds: u64) -> Vec<StreamEdge> {
        let mut out = Vec::new();
        let mut ts = 0u64;
        for r in 0..rounds {
            let t = (r % n_tenants as u64) as u16;
            ts += 1;
            if (r / n_tenants as u64).is_multiple_of(2) {
                out.push(StreamEdge::new(
                    ts,
                    1_000 + r as u32,
                    3 * t,
                    200 + t as u32,
                    3 * t + 1,
                    0,
                    ts,
                ));
            } else {
                out.push(StreamEdge::new(
                    ts,
                    200 + t as u32,
                    3 * t + 1,
                    10_000 + r as u32,
                    3 * t + 2,
                    0,
                    ts,
                ));
            }
        }
        out
    }

    #[test]
    fn sharded_equals_serial_registry() {
        let stream = tenant_stream(6, 240);
        let mut serial: MultiQueryEngine = MultiQueryEngine::new(25);
        let serial_ids: Vec<_> = (0..6u16).map(|t| serial.register(plan(t))).collect();
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(25, 3);
        let sharded_ids: Vec<_> = (0..6u16).map(|t| sharded.register(plan(t))).collect();
        assert_eq!(sharded.n_queries(), 6);

        let mut want: Vec<(usize, MatchRecord)> = Vec::new();
        for &e in &stream {
            for (qid, m) in serial.advance(e) {
                let tenant = serial_ids.iter().position(|&x| x == qid).unwrap();
                want.push((tenant, m));
            }
        }
        let mut got: Vec<(usize, MatchRecord)> = sharded
            .process(&stream)
            .into_iter()
            .map(|(qid, m)| (sharded_ids.iter().position(|&x| x == qid).unwrap(), m))
            .collect();
        want.sort();
        got.sort();
        assert_eq!(want, got);
        assert!(!want.is_empty(), "the workload produces matches");
    }

    #[test]
    fn registration_churn_between_batches() {
        let stream = tenant_stream(4, 160);
        let (first, second) = stream.split_at(80);
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(25, 2);
        let q0 = sharded.register(plan(0));
        let q1 = sharded.register(plan(1));
        let out1 = sharded.process(first);
        assert!(out1.iter().any(|(q, _)| *q == q0));
        assert!(out1.iter().any(|(q, _)| *q == q1));
        // Tenant 1 leaves, tenant 2 arrives between batches.
        assert!(sharded.unregister(q1));
        let q2 = sharded.register(plan(2));
        let out2 = sharded.process(second);
        assert!(out2.iter().all(|(q, _)| *q != q1), "unregistered query stays silent");
        assert!(out2.iter().any(|(q, _)| *q == q2), "late registration matches fresh patterns");
        // Stats merge across shards without losing anyone.
        let st = sharded.stats();
        assert_eq!(st.queries.len(), 2);
        assert!(st.space_bytes() >= st.snapshot_bytes);
    }

    #[test]
    fn least_loaded_placement_spreads_queries() {
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(10, 4);
        let ids: Vec<_> = (0..8u16).map(|t| sharded.register(plan(t))).collect();
        let mut per_shard = vec![0usize; 4];
        for &id in &ids {
            per_shard[sharded.shard_of(id).unwrap()] += 1;
        }
        assert_eq!(per_shard, vec![2, 2, 2, 2]);
        // Ids are globally unique and strided.
        let mut sorted: Vec<u64> = ids.iter().map(|q| q.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    /// Duplicate registrations land on their template's shard (sharing
    /// needs cohabitation) and cost no placement load, so distinct
    /// templates still spread evenly.
    #[test]
    fn duplicate_registrations_home_on_the_template_shard() {
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(10, 4);
        assert_eq!(sharded.share_mode(), ShareMode::Shared);
        // 12 copies of tenant 0's template plus 3 distinct tenants.
        let copies: Vec<_> = (0..12).map(|_| sharded.register(plan(0))).collect();
        let others: Vec<_> = (1..4u16).map(|t| sharded.register(plan(t))).collect();
        let home0 = sharded.shard_of(copies[0]).unwrap();
        for &id in &copies {
            assert_eq!(sharded.shard_of(id), Some(home0), "copies cohabit");
        }
        assert_eq!(sharded.n_queries(), 15);
        assert_eq!(sharded.n_templates(), 4, "one engine per distinct template");
        // Load accounting is per template: every shard carries exactly
        // one engine despite the 12-subscriber pile-up.
        let mut homes: Vec<usize> =
            others.iter().map(|&id| sharded.shard_of(id).unwrap()).collect();
        homes.push(home0);
        homes.sort_unstable();
        homes.dedup();
        assert_eq!(homes.len(), 4, "distinct templates spread across all shards");
        // The last copy leaving frees the template's load unit.
        for &id in &copies {
            assert!(sharded.unregister(id));
        }
        assert_eq!(sharded.n_templates(), 3);
        let replacement = sharded.register(plan(0));
        assert!(sharded.shard_of(replacement).is_some());
        assert_eq!(sharded.n_templates(), 4);
    }

    /// `ShareMode::Private` on the front-end keeps one engine per query
    /// and per-query load accounting.
    #[test]
    fn private_front_end_spreads_duplicate_queries() {
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(10, 4);
        sharded.set_share_mode(ShareMode::Private);
        let ids: Vec<_> = (0..8).map(|_| sharded.register(plan(0))).collect();
        assert_eq!(sharded.n_templates(), 8, "no sharing: one engine each");
        let mut per_shard = vec![0usize; 4];
        for &id in &ids {
            per_shard[sharded.shard_of(id).unwrap()] += 1;
        }
        assert_eq!(per_shard, vec![2, 2, 2, 2]);
    }

    #[test]
    fn try_process_is_batch_atomic_on_rejection() {
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(25, 2);
        let q0 = sharded.register(plan(0));
        let mut stream = tenant_stream(1, 8);
        // Corrupt one edge mid-batch: behind the watermark of its
        // predecessors.
        stream[5].ts = tcs_graph::Timestamp(1);
        let err = sharded.try_process(&stream).unwrap_err();
        assert!(matches!(err, IngestError::OutOfOrder { ts: 1, .. }));
        // Nothing was admitted or dispatched: the same batch minus the
        // offender goes through cleanly from scratch.
        assert_eq!(sharded.ingest_stats().admitted, 0);
        let st = sharded.stats();
        assert_eq!(st.edges_seen, 0);
        assert_eq!(st.queries[0].stats.edges_processed, 0);
        stream.remove(5);
        let out = sharded.try_process(&stream).unwrap();
        assert!(out.iter().any(|(q, _)| *q == q0));
        assert_eq!(sharded.ingest_stats().admitted, stream.len() as u64);
    }

    #[test]
    fn stats_normalized_scales_to_full_stream() {
        let stream = tenant_stream(4, 120);
        let mut sharded: ShardedMultiEngine = ShardedMultiEngine::new(25, 2);
        let ids: Vec<_> = (0..4u16).map(|t| sharded.register(plan(t))).collect();
        sharded.process(&stream);
        // Serial oracle over the same stream sees every edge for every
        // query (normalized semantics).
        let mut serial: MultiQueryEngine = MultiQueryEngine::new(25);
        let oracle_ids: Vec<_> = (0..4u16).map(|t| serial.register(plan(t))).collect();
        for &e in &stream {
            serial.advance(e);
        }
        let norm = sharded.stats_normalized();
        for (id, oid) in ids.iter().zip(&oracle_ids) {
            let got = norm.queries.iter().find(|q| q.id == *id).unwrap().stats;
            let want = serial.stats_of(*oid).unwrap();
            assert_eq!(got, want, "normalized sharded stats equal serial registry stats");
        }
        // The raw report, by contract, counts only the home shard's
        // substream: strictly fewer processed edges for at least one
        // query (two tenants share each shard here).
        let raw = sharded.stats();
        assert!(raw
            .queries
            .iter()
            .zip(&norm.queries)
            .any(|(r, n)| r.stats.edges_processed < n.stats.edges_processed));
    }
}
