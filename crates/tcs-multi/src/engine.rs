//! The shared-snapshot query registry with signature-routed dispatch and
//! cross-tenant template sharing.
//!
//! One [`MultiQueryEngine`] owns one [`SlidingWindow`] and one
//! [`Snapshot`]; registered queries are grouped by canonical plan
//! fingerprint into *shared templates* — one [`TimingEngine`] per
//! distinct template, fanned out to every subscriber — and each template
//! runs against the shared snapshot through the
//! `insert_at`/`expire_partials` split (see the crate docs for the
//! sharing model, the dispatch-index lifecycle and registration
//! semantics, and `tcs_core::engine` for the split itself).

use crate::fault::{payload_str, FaultPolicy, QueryFault, ShardHealth};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use tcs_core::engine::EngineStats;
use tcs_core::fail_point;
use tcs_core::failpoints::sites;
use tcs_core::store::MatchStore;
use tcs_core::{
    BatchMode, IngestError, IngestGate, IngestStats, MsTreeStore, OrderPolicy, PlanFingerprint,
    QueryPlan, TimingEngine,
};
use tcs_graph::{ELabel, EdgeId, MatchRecord, SlidingWindow, Snapshot, StreamEdge, VLabel};
use tcs_telemetry::{EventKind, Recorder};

/// Identifier of a registered query, unique for the lifetime of the
/// engine (ids of unregistered queries are never reused).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

/// Identifier of a shared template (one per distinct canonical plan),
/// unique for the engine's lifetime — like query ids, never reused, so a
/// template re-registered after a quarantine starts from a fresh id and
/// can never inherit stale dispatch entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct TemplateId(u64);

/// How arriving/expiring edges reach the registered queries.
///
/// [`DispatchMode::Signature`] (the default) routes each edge through the
/// leaf-signature dispatch index and maintains the shared snapshot —
/// per-edge work is O(templates that can react).
/// [`DispatchMode::Broadcast`] is the ablation baseline the speedup gate
/// measures against: every edge is delivered to every registered engine
/// through the standalone `insert`/`expire` path, so each engine keeps
/// its own private window copy — exactly N independent [`TimingEngine`]s
/// sharing nothing, the only deployment shape available before this
/// subsystem. Template sharing requires the shared snapshot, so
/// Broadcast mode always runs one engine per query. Both modes emit
/// identical per-query match streams and stats (test-enforced).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Signature-routed dispatch over the shared snapshot (fast path).
    #[default]
    Signature,
    /// Broadcast to all engines, private windows (N-independent-engines
    /// ablation baseline).
    Broadcast,
}

/// Whether registrations of fingerprint-identical plans share one
/// engine.
///
/// [`ShareMode::Shared`] (the default) keys the registry by canonical
/// [`PlanFingerprint`]: N registrations of one template cost ~one query
/// (one engine, one store), with per-subscriber fan-out at the emission
/// point. [`ShareMode::Private`] is the one-engine-per-query ablation —
/// the pre-sharing deployment shape the `share_rows` gate measures
/// against. The mode is fixed before the first registration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShareMode {
    /// One engine per distinct canonical plan, subscriber fan-out.
    #[default]
    Shared,
    /// One engine per registration (ablation baseline).
    Private,
}

/// Per-query counters and space share reported by
/// [`MultiQueryEngine::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryStats {
    /// The query.
    pub id: QueryId,
    /// Engine counters, normalized to what an independent engine fed the
    /// same stream (from this query's registration on) would report:
    /// arrivals the dispatch index filtered out are counted as processed
    /// and discarded, because that is what the engine itself would have
    /// done with them. Under sharing the counters are the shared
    /// engine's deltas since this subscriber registered, with
    /// `matches_emitted` replaced by the subscriber's own emission count
    /// (the epoch filter can withhold matches a warm engine completes).
    pub stats: EngineStats,
    /// Arrivals actually delivered to this query's (possibly shared)
    /// engine while this subscriber was registered.
    pub routed: u64,
    /// Matches delivered to *this* subscriber after epoch filtering.
    pub emitted: u64,
    /// Bytes attributable to this query alone: its template's
    /// partial-match store in [`DispatchMode::Signature`], reported once
    /// per template on the template's earliest live subscriber and 0 on
    /// the others (the shared snapshot is reported once, in
    /// [`MultiStats::snapshot_bytes`]); its store *plus* its private
    /// window copy in [`DispatchMode::Broadcast`] — the N× duplication
    /// dispatch mode eliminates.
    pub store_bytes: usize,
}

/// Per-template counters reported by [`MultiQueryEngine::stats`] — one
/// entry per shared engine, the unit the sharing gates measure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemplateStats {
    /// Digest of the template's canonical fingerprint (0 when sharing is
    /// inactive and the template is a private singleton).
    pub digest: u64,
    /// Live subscribers fanned out from this template's engine.
    pub subscribers: usize,
    /// The shared engine's raw (un-normalized) counters.
    pub stats: EngineStats,
    /// The template's store bytes — paid once regardless of subscriber
    /// count.
    pub store_bytes: usize,
}

/// Aggregate report of [`MultiQueryEngine::stats`]: per-query counters
/// plus the shared-window bytes, counted once.
#[derive(Clone, Debug, Default)]
pub struct MultiStats {
    /// One entry per registered query, in registration (id) order.
    pub queries: Vec<QueryStats>,
    /// One entry per shared template, in template-creation order.
    pub templates: Vec<TemplateStats>,
    /// Bytes of the shared snapshot — the whole point of the shared
    /// window is that this appears once here instead of once per query
    /// (0 in [`DispatchMode::Broadcast`], where each engine pays for its
    /// own copy inside [`QueryStats::store_bytes`]).
    pub snapshot_bytes: usize,
    /// Arrivals the engine has seen since construction.
    pub edges_seen: u64,
    /// Every query quarantined so far, in fault order (see
    /// [`FaultPolicy::Quarantine`]). Quarantined queries no longer appear
    /// in [`MultiStats::queries`]; this log is how their fate is read.
    pub faults: Vec<QueryFault>,
    /// Ingestion-boundary counters: what the gate admitted, clamped,
    /// dropped and rejected (see `tcs_core::ingest`). Kept apart from the
    /// per-query [`EngineStats`] so those stay oracle-comparable.
    pub ingest: IngestStats,
    /// Per-shard health (shed counts, worker restarts) — filled by
    /// [`ShardedMultiEngine::stats`](crate::ShardedMultiEngine::stats),
    /// empty for a serial registry.
    pub shards: Vec<ShardHealth>,
}

impl MultiStats {
    /// Total bytes: the shared snapshot once plus every query's own
    /// store (under sharing each template's store appears exactly once).
    pub fn space_bytes(&self) -> usize {
        self.snapshot_bytes + self.queries.iter().map(|q| q.store_bytes).sum::<usize>()
    }

    /// Sum of the per-query counters.
    pub fn total(&self) -> EngineStats {
        let mut t = EngineStats::default();
        for q in &self.queries {
            t.edges_processed += q.stats.edges_processed;
            t.edges_discarded += q.stats.edges_discarded;
            t.matches_emitted += q.stats.matches_emitted;
            t.partials_inserted += q.stats.partials_inserted;
            t.partials_deleted += q.stats.partials_deleted;
            t.join_ops += q.stats.join_ops;
        }
        t
    }
}

/// One shared template: the engine every fingerprint-identical
/// registration fans out from.
struct SharedTemplate<S: MatchStore> {
    engine: TimingEngine<S>,
    /// The canonical fingerprint this template is keyed under (`None`
    /// when sharing is inactive — Private/Broadcast templates skip the
    /// canonicalization cost entirely, keeping the ablation honest).
    fp: Option<PlanFingerprint>,
    /// canonical edge index → this engine's (the founder plan's) edge
    /// index; `None` alongside `fp: None`.
    inv_perm: Option<Vec<usize>>,
    /// Live subscribers in registration order (ascending id).
    subs: Vec<QueryId>,
}

/// One registered query's view of its template.
struct Subscriber {
    template: TemplateId,
    /// Emission epoch: `None` for a founder (saw the engine from birth,
    /// unfiltered); `Some(e)` for a late joiner to a warm engine, which
    /// sees exactly the matches whose emission floor exceeds `e` — i.e.
    /// matches made entirely of post-registration edges (fresh-start
    /// semantics, enforced at the emission point).
    epoch: Option<u64>,
    /// Value of `edges_seen` when the subscriber registered.
    seen_base: u64,
    /// The shared engine's counters at registration — per-subscriber
    /// stats are deltas from here.
    stats_base: EngineStats,
    /// Arrivals delivered to the template while this subscriber was
    /// registered.
    routed: u64,
    /// Matches delivered to this subscriber after epoch filtering.
    emitted: u64,
    /// subscriber edge index → founder edge index, for rewriting emitted
    /// records into this subscriber's own edge order; `None` = identity.
    remap: Option<Vec<usize>>,
    /// The subscriber's own plan, kept only when it differs from the
    /// founder's (non-identity remap) so re-homing can re-register it
    /// verbatim; `None` = the template engine's plan is this plan.
    plan: Option<QueryPlan>,
}

/// The armed telemetry sink plus front-end sampling state (see
/// [`MultiQueryEngine::set_recorder`]). The front-end instruments its
/// own advance path — the wrapped [`TimingEngine`]s stay un-armed, so
/// nothing is ever double-counted across layers.
struct MultiTel {
    rec: Arc<Recorder>,
    /// Sampling tick: one per advance unit (edge or batch).
    tick: u32,
    /// Whether this registry counts endpoint hot-key traffic itself —
    /// the sharded front-end counts keys once at routing time and arms
    /// its shards with this off.
    hot_keys: bool,
}

/// Saturating nanoseconds since `t0`.
fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Quarantine payloads ride in the bounded event ring: keep a readable
/// prefix, not an arbitrary panic dump.
const EVENT_PAYLOAD_CAP: usize = 120;

/// A dynamic registry of standing queries over one shared window.
///
/// See the crate docs for the sharing model, the dispatch-index
/// lifecycle, registration semantics, and the equivalence guarantee
/// against independent engines.
pub struct MultiQueryEngine<S: MatchStore = MsTreeStore> {
    window: SlidingWindow,
    /// The shared live window `G_t`, one copy for all queries.
    snapshot: Snapshot,
    /// One engine per distinct canonical plan (per registration under
    /// [`ShareMode::Private`] or [`DispatchMode::Broadcast`]).
    templates: BTreeMap<TemplateId, SharedTemplate<S>>,
    /// Every registered query, in id order.
    subscribers: BTreeMap<QueryId, Subscriber>,
    /// canonical fingerprint → its live template (sharing active only).
    by_fp: HashMap<PlanFingerprint, TemplateId>,
    /// signature → templates with a query edge of that signature, each
    /// bucket in template-creation order.
    dispatch: HashMap<(VLabel, VLabel, ELabel), Vec<TemplateId>>,
    mode: DispatchMode,
    share: ShareMode,
    edges_seen: u64,
    next_id: u64,
    id_stride: u64,
    next_template: u64,
    /// The typed ingestion boundary: every arrival passes the gate before
    /// it can touch the window, the snapshot, or any engine.
    gate: IngestGate,
    /// What a panic inside one template's per-arrival work becomes.
    fault_policy: FaultPolicy,
    /// Quarantined queries, in fault order.
    faults: Vec<QueryFault>,
    /// How [`MultiQueryEngine::advance_batch`] applies routed sub-batches
    /// inside each engine (propagated to engines at registration).
    batch_mode: BatchMode,
    /// The telemetry seam: `None` (default) until a harness arms a
    /// recorder — see [`MultiQueryEngine::set_recorder`]. Recording
    /// never touches [`MultiStats`] or any per-query counters.
    tel: Option<MultiTel>,
}

/// Component-wise delta of two monotone counter snapshots.
fn stats_since(now: &EngineStats, base: &EngineStats) -> EngineStats {
    EngineStats {
        edges_processed: now.edges_processed.saturating_sub(base.edges_processed),
        edges_discarded: now.edges_discarded.saturating_sub(base.edges_discarded),
        matches_emitted: now.matches_emitted.saturating_sub(base.matches_emitted),
        partials_inserted: now.partials_inserted.saturating_sub(base.partials_inserted),
        partials_deleted: now.partials_deleted.saturating_sub(base.partials_deleted),
        join_ops: now.join_ops.saturating_sub(base.join_ops),
    }
}

/// Rewrites a founder-order match record into a subscriber's own edge
/// order (`remap[s]` = founder edge index of subscriber edge `s`);
/// `None` = identical orders, clone as-is.
fn remap_record(m: &MatchRecord, remap: Option<&[usize]>) -> MatchRecord {
    match remap {
        None => m.clone(),
        Some(r) => MatchRecord::from(r.iter().map(|&f| m.edge(f)).collect::<Vec<EdgeId>>()),
    }
}

/// Delivers one engine emission burst to a template's subscribers:
/// per-subscriber epoch filtering against the emission floors, record
/// rewriting into each subscriber's edge order, and counter upkeep.
fn fan_out(
    subscribers: &mut BTreeMap<QueryId, Subscriber>,
    subs: &[QueryId],
    ms: &[MatchRecord],
    floors: &[u64],
    routed_inc: u64,
    out: &mut Vec<(QueryId, MatchRecord)>,
) {
    for q in subs {
        let Some(sub) = subscribers.get_mut(q) else {
            debug_assert!(false, "template lists a registered subscriber");
            continue;
        };
        sub.routed += routed_inc;
        for (mi, m) in ms.iter().enumerate() {
            if let Some(ep) = sub.epoch {
                // Floor = min arrival number over the match's edges; 0
                // for any edge that predates floor arming. A late
                // subscriber sees the match iff every constituent edge
                // arrived after its epoch.
                if floors.get(mi).copied().unwrap_or(0) <= ep {
                    continue;
                }
            }
            sub.emitted += 1;
            out.push((*q, remap_record(m, sub.remap.as_deref())));
        }
    }
}

impl<S: MatchStore> MultiQueryEngine<S> {
    /// An empty registry over a window of the given duration, in
    /// [`DispatchMode::Signature`] and [`ShareMode::Shared`].
    pub fn new(window: u64) -> Self {
        Self::with_mode(window, DispatchMode::Signature)
    }

    /// An empty registry with an explicit dispatch mode. The mode is
    /// fixed for the engine's lifetime: the two modes keep window state
    /// in different places (shared snapshot vs private engine maps), so
    /// switching mid-stream would strand one of them.
    pub fn with_mode(window: u64, mode: DispatchMode) -> Self {
        Self::with_id_stride(window, mode, 0, 1)
    }

    /// An empty registry whose [`QueryId`]s are `first, first + stride,
    /// first + 2·stride, …` — shard `i` of an `n`-shard front-end uses
    /// `(i, n)` so ids stay globally unique without coordination.
    pub fn with_id_stride(window: u64, mode: DispatchMode, first: u64, stride: u64) -> Self {
        assert!(stride >= 1, "id stride must be positive");
        MultiQueryEngine {
            window: SlidingWindow::new(window),
            snapshot: Snapshot::new(),
            templates: BTreeMap::new(),
            subscribers: BTreeMap::new(),
            by_fp: HashMap::new(),
            dispatch: HashMap::new(),
            mode,
            share: ShareMode::default(),
            edges_seen: 0,
            next_id: first,
            id_stride: stride,
            next_template: 0,
            gate: IngestGate::new(window, OrderPolicy::default()),
            fault_policy: FaultPolicy::default(),
            faults: Vec::new(),
            batch_mode: BatchMode::default(),
            tel: None,
        }
    }

    /// Arms the telemetry seam: per-arrival processing latency,
    /// per-query and per-template detection latency, endpoint hot-key
    /// traffic and lifecycle events (register/unregister/quarantine)
    /// flow into `rec` from now on, under its sampling contract.
    /// Telemetry never perturbs [`MultiStats`], any [`EngineStats`], or
    /// the match stream (the telemetry-equivalence suite pins this
    /// byte-for-byte). The wrapped per-template engines stay un-armed —
    /// this layer instruments its own dispatch path, so nothing is
    /// double-counted.
    pub fn set_recorder(&mut self, rec: Arc<Recorder>) {
        self.set_recorder_scoped(rec, true);
    }

    /// [`MultiQueryEngine::set_recorder`] with hot-key counting
    /// controlled by the caller — the sharded front-end counts keys once
    /// at routing time and arms its shards with `hot_keys: false`.
    pub(crate) fn set_recorder_scoped(&mut self, rec: Arc<Recorder>, hot_keys: bool) {
        self.tel = Some(MultiTel { rec, tick: 0, hot_keys });
    }

    /// Disarms the telemetry seam; the recorder keeps what it has.
    pub fn clear_recorder(&mut self) {
        self.tel = None;
    }

    /// Telemetry: one sampling tick per advance unit; `Some(stamp)` on
    /// the units that pay for a wall-clock read.
    fn tel_stamp(&mut self) -> Option<Instant> {
        let t = self.tel.as_mut()?;
        t.tick += 1;
        if t.tick >= t.rec.sample_every() {
            t.tick = 0;
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Telemetry: counts endpoint traffic for a sampled unit (skipped
    /// when the sharded front-end already counted these edges at routing
    /// time).
    fn tel_record_keys(&self, edges: &[StreamEdge]) {
        let Some(tel) = &self.tel else { return };
        if !tel.hot_keys {
            return;
        }
        for e in edges {
            tel.rec.record_key(u64::from(e.src.0));
            if e.dst != e.src {
                tel.rec.record_key(u64::from(e.dst.0));
            }
        }
    }

    /// Telemetry: closes a sampled unit. `proc` feeds per-edge
    /// processing latency (`n` edges at the unit's average); `arr` is
    /// the unit's *arrival* instant — the detection-latency origin,
    /// which the sharded front-end stamps at enqueue time so queue wait
    /// counts — feeding every emitted match's per-query and per-template
    /// histograms.
    fn tel_finish(
        &self,
        proc: Option<Instant>,
        arr: Option<Instant>,
        n: u64,
        out: &[(QueryId, MatchRecord)],
    ) {
        let Some(tel) = &self.tel else { return };
        if let Some(t0) = proc {
            if let Some(per_edge) = elapsed_ns(t0).checked_div(n) {
                tel.rec.record_edge_ns(per_edge, n);
            }
        }
        let Some(a0) = arr else { return };
        if out.is_empty() {
            return;
        }
        let ns = elapsed_ns(a0);
        for (qid, _) in out {
            tel.rec.record_detection(qid.0, ns, 1);
            let digest = self
                .subscribers
                .get(qid)
                .and_then(|s| self.templates.get(&s.template))
                .and_then(|t| t.fp.as_ref())
                .map_or(0, PlanFingerprint::digest);
            tel.rec.record_detection_template(digest, ns, 1);
        }
    }

    /// Telemetry: appends one lifecycle event (no-op while disarmed).
    fn tel_event(&self, kind: EventKind) {
        if let Some(tel) = &self.tel {
            tel.rec.event(kind);
        }
    }

    /// The active sharing mode.
    pub fn share_mode(&self) -> ShareMode {
        self.share
    }

    /// Sets the sharing mode — [`ShareMode::Private`] is the
    /// one-engine-per-query ablation of the `share_rows` gate. Must be
    /// called before the first registration: the two modes key the
    /// registry differently, so switching with live queries would strand
    /// half the index.
    pub fn set_share_mode(&mut self, share: ShareMode) {
        assert!(
            self.subscribers.is_empty(),
            "share mode is fixed at first registration; set it on an empty registry"
        );
        self.share = share;
    }

    /// Whether registrations are being deduplicated by fingerprint:
    /// requires [`ShareMode::Shared`] *and* the shared snapshot
    /// ([`DispatchMode::Signature`]).
    fn sharing_active(&self) -> bool {
        self.share == ShareMode::Shared && self.mode == DispatchMode::Signature
    }

    /// How routed sub-batches are applied inside each query's engine.
    pub fn batch_mode(&self) -> BatchMode {
        self.batch_mode
    }

    /// Sets the per-engine batch mode — [`BatchMode::PerEdge`] is the
    /// ablation baseline of the batch bench gate. Applies to every
    /// registered engine and to future registrations.
    pub fn set_batch_mode(&mut self, mode: BatchMode) {
        self.batch_mode = mode;
        for t in self.templates.values_mut() {
            t.engine.set_batch_mode(mode);
        }
    }

    /// The active out-of-order arrival policy of the ingestion gate.
    pub fn order_policy(&self) -> OrderPolicy {
        self.gate.policy()
    }

    /// Replaces the ingestion gate's out-of-order policy (effective from
    /// the next arrival).
    pub fn set_order_policy(&mut self, policy: OrderPolicy) {
        self.gate.set_policy(policy);
    }

    /// Ingestion-boundary counters so far.
    pub fn ingest_stats(&self) -> IngestStats {
        self.gate.stats()
    }

    /// The active per-query panic policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Replaces the per-query panic policy (effective from the next
    /// arrival). [`FaultPolicy::Propagate`] is the default for a bare
    /// registry; [`ShardedMultiEngine`](crate::ShardedMultiEngine) puts
    /// its shards under [`FaultPolicy::Quarantine`].
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.fault_policy = policy;
    }

    /// Every query quarantined so far, in fault order. A panic inside a
    /// shared template quarantines *all* of its subscribers — one
    /// [`QueryFault`] each, same payload and edge sequence.
    pub fn faults(&self) -> &[QueryFault] {
        &self.faults
    }

    /// The dispatch mode fixed at construction.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// Number of registered queries (subscribers).
    pub fn n_queries(&self) -> usize {
        self.subscribers.len()
    }

    /// Number of live shared templates (engines actually running) —
    /// under sharing this is the number of *distinct* canonical plans,
    /// the denominator of the cost-per-registration gate.
    pub fn n_templates(&self) -> usize {
        self.templates.len()
    }

    /// Ids of the registered queries, in registration (id) order.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.subscribers.keys().copied()
    }

    /// The distinct signatures the registry currently reacts to (the
    /// dispatch index keys). A sharded front-end unions these per shard
    /// into its routing table.
    pub fn signatures(&self) -> impl Iterator<Item = (VLabel, VLabel, ELabel)> + '_ {
        self.dispatch.keys().copied()
    }

    /// Whether any registered query can react to this signature.
    #[inline]
    pub fn wants(&self, sig: (VLabel, VLabel, ELabel)) -> bool {
        self.dispatch.contains_key(&sig)
    }

    /// Registers a compiled plan as a standing query, effective from the
    /// next arrival; returns its id. Edges already inside the window are
    /// not replayed (crate docs, "Registration semantics") — under
    /// sharing a late subscriber to a warm template is epoch-filtered at
    /// the emission point so it behaves exactly like a fresh private
    /// engine. Ids are never reused — in particular not those of
    /// quarantined queries, so a registration after a fault can never
    /// inherit stale dispatch entries (regression-tested).
    pub fn register(&mut self, plan: QueryPlan) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id = match self.next_id.checked_add(self.id_stride) {
            Some(n) => n,
            None => panic!("query ids exhausted"),
        };
        self.register_as(id, plan);
        id
    }

    /// Registers a plan under a caller-chosen id — the supervisor's
    /// re-homing path, where surviving queries keep their public ids
    /// across a shard rebuild. The id must be unused and must never
    /// collide with ids the stride will produce (callers pass ids the
    /// stride already produced).
    pub(crate) fn register_as(&mut self, id: QueryId, plan: QueryPlan) {
        debug_assert!(!self.subscribers.contains_key(&id), "query id {id:?} already registered");
        self.tel_event(EventKind::Register { qid: id.0 });
        if self.sharing_active() {
            let (fp, perm) = PlanFingerprint::canonicalize(&plan.query);
            if let Some(&tid) = self.by_fp.get(&fp) {
                let Some(t) = self.templates.get_mut(&tid) else {
                    unreachable!("fingerprint index targets a live template");
                };
                // A late joiner: arm the emission seam (idempotent) and
                // record the epoch so only post-registration matches
                // reach this subscriber.
                t.engine.arm_emission_floors();
                let epoch = Some(t.engine.emission_epoch());
                let remap: Vec<usize> = match &t.inv_perm {
                    Some(inv) => perm.iter().map(|&c| inv[c]).collect(),
                    None => perm.clone(),
                };
                let identity = remap.iter().enumerate().all(|(s, &f)| s == f);
                t.subs.push(id);
                self.subscribers.insert(
                    id,
                    Subscriber {
                        template: tid,
                        epoch,
                        seen_base: self.edges_seen,
                        stats_base: t.engine.stats(),
                        routed: 0,
                        emitted: 0,
                        remap: if identity { None } else { Some(remap) },
                        plan: if identity { None } else { Some(plan) },
                    },
                );
                return;
            }
            let tid = self.fresh_template(plan, Some((fp, perm)));
            self.insert_founder(id, tid);
            return;
        }
        let tid = self.fresh_template(plan, None);
        self.insert_founder(id, tid);
    }

    /// Records a founder subscriber: saw its engine from birth, so no
    /// epoch filter and zero stats base.
    fn insert_founder(&mut self, id: QueryId, tid: TemplateId) {
        if let Some(t) = self.templates.get_mut(&tid) {
            t.subs.push(id);
        }
        self.subscribers.insert(
            id,
            Subscriber {
                template: tid,
                epoch: None,
                seen_base: self.edges_seen,
                stats_base: EngineStats::default(),
                routed: 0,
                emitted: 0,
                remap: None,
                plan: None,
            },
        );
    }

    /// Builds a new template around this plan's engine and indexes it:
    /// dispatch entries per leaf signature, fingerprint entry when
    /// sharing is active.
    fn fresh_template(
        &mut self,
        plan: QueryPlan,
        canon: Option<(PlanFingerprint, Vec<usize>)>,
    ) -> TemplateId {
        let tid = TemplateId(self.next_template);
        self.next_template = match self.next_template.checked_add(1) {
            Some(n) => n,
            None => panic!("template ids exhausted"),
        };
        for sig in plan.signatures() {
            let bucket = self.dispatch.entry(sig).or_default();
            debug_assert!(!bucket.contains(&tid));
            bucket.push(tid);
        }
        let (fp, inv_perm) = match canon {
            Some((fp, perm)) => {
                let mut inv = vec![0usize; perm.len()];
                for (e, &c) in perm.iter().enumerate() {
                    inv[c] = e;
                }
                self.by_fp.insert(fp.clone(), tid);
                (Some(fp), Some(inv))
            }
            None => (None, None),
        };
        let mut engine = TimingEngine::new(plan);
        engine.set_batch_mode(self.batch_mode);
        self.templates.insert(tid, SharedTemplate { engine, fp, inv_perm, subs: Vec::new() });
        tid
    }

    /// The next id [`MultiQueryEngine::register`] would hand out — a
    /// rebuilt shard resumes the sequence so ids stay unique across
    /// restarts.
    pub(crate) fn next_raw_id(&self) -> u64 {
        self.next_id
    }

    /// The registered queries as `(id, plan)` pairs in id order — what a
    /// supervisor re-homes after this registry's worker died. Each
    /// subscriber reports its *own* plan (edge order and all), not the
    /// founder's, so re-registration reproduces its exact match records.
    pub(crate) fn registrations(&self) -> Vec<(QueryId, QueryPlan)> {
        self.subscribers
            .iter()
            .map(|(&id, sub)| {
                let plan = match &sub.plan {
                    Some(p) => p.clone(),
                    None => match self.templates.get(&sub.template) {
                        Some(t) => t.engine.plan().clone(),
                        None => unreachable!("subscriber references a live template"),
                    },
                };
                (id, plan)
            })
            .collect()
    }

    /// Carries a predecessor's fault log into this registry (shard
    /// rebuild: the log survives the worker).
    pub(crate) fn adopt_faults(&mut self, faults: Vec<QueryFault>) {
        let mut faults = faults;
        faults.extend(std::mem::take(&mut self.faults));
        self.faults = faults;
    }

    /// Drops a standing query; the last subscriber of a template takes
    /// the template, its engine, its dispatch entries and its partial
    /// matches with it (refcounted teardown). Returns false if the id is
    /// unknown (already unregistered).
    pub fn unregister(&mut self, id: QueryId) -> bool {
        let removed = self.unregister_inner(id);
        if removed {
            self.tel_event(EventKind::Unregister { qid: id.0 });
        }
        removed
    }

    /// [`MultiQueryEngine::unregister`] without the lifecycle event —
    /// the quarantine path tears subscribers down through here so each
    /// faulted query logs exactly one event (the quarantine itself).
    fn unregister_inner(&mut self, id: QueryId) -> bool {
        let Some(sub) = self.subscribers.remove(&id) else {
            return false;
        };
        let tid = sub.template;
        let Some(t) = self.templates.get_mut(&tid) else {
            debug_assert!(false, "subscriber references a live template");
            return true;
        };
        t.subs.retain(|&q| q != id);
        if !t.subs.is_empty() {
            return true;
        }
        let Some(t) = self.templates.remove(&tid) else {
            unreachable!("template present above");
        };
        if let Some(fp) = &t.fp {
            if self.by_fp.get(fp) == Some(&tid) {
                self.by_fp.remove(fp);
            }
        }
        for sig in t.engine.plan().signatures() {
            let std::collections::hash_map::Entry::Occupied(mut bucket) = self.dispatch.entry(sig)
            else {
                unreachable!("registered signature has a dispatch bucket");
            };
            bucket.get_mut().retain(|&q| q != tid);
            if bucket.get().is_empty() {
                bucket.remove();
            }
        }
        true
    }

    /// Slides the shared window to the arrival and routes the resulting
    /// expiries + insertion to the templates that can react. Returns the
    /// newly completed matches as `(query, match)` pairs, grouped by
    /// template in creation order, each template's subscribers in
    /// registration order, each subscriber's matches in emission order.
    ///
    /// Panics on invalid input ([`IngestError`]) — stream owners that must
    /// survive a misbehaving source use [`MultiQueryEngine::try_advance`]
    /// or a lenient [`OrderPolicy`] instead.
    pub fn advance(&mut self, e: StreamEdge) -> Vec<(QueryId, MatchRecord)> {
        match self.try_advance(e) {
            Ok(out) => out,
            Err(err) => panic!("MultiQueryEngine::advance fed invalid input: {err}"),
        }
    }

    /// [`MultiQueryEngine::advance`] with the ingestion boundary surfaced:
    /// an invalid arrival becomes a typed [`IngestError`] with every
    /// window, snapshot and engine untouched; out-of-order arrivals follow
    /// the gate's [`OrderPolicy`]. Under [`FaultPolicy::Quarantine`] a
    /// panic inside one template's work quarantines that template — every
    /// subscriber gets one [`QueryFault`] (recorded in
    /// [`MultiQueryEngine::faults`]) — and the remaining templates still
    /// process the arrival.
    pub fn try_advance(
        &mut self,
        e: StreamEdge,
    ) -> Result<Vec<(QueryId, MatchRecord)>, IngestError> {
        let Some(e) = self.gate.admit(e)? else {
            return Ok(Vec::new()); // dropped per OrderPolicy::DropSilently
        };
        let tel_t0 = self.tel_stamp();
        if tel_t0.is_some() {
            self.tel_record_keys(std::slice::from_ref(&e));
        }
        let ev = self.window.advance(e);
        // Templates that panicked while handling THIS arrival: skipped
        // for the rest of the event, torn down after it.
        let mut faulted: Vec<(TemplateId, String)> = Vec::new();
        let out = match self.mode {
            DispatchMode::Signature => {
                for x in &ev.expired {
                    if let Some(targets) = self.dispatch.get(&x.signature()) {
                        for tid in targets {
                            if faulted.iter().any(|(f, _)| f == tid) {
                                continue;
                            }
                            let Some(t) = self.templates.get_mut(tid) else {
                                debug_assert!(false, "dispatch targets a live template");
                                continue;
                            };
                            let SharedTemplate { ref mut engine, ref subs, .. } = *t;
                            let mut work = || {
                                for q in subs {
                                    fail_point!(sites::PRE_EXPIRY, q.0);
                                }
                                engine.expire_partials(x);
                            };
                            match self.fault_policy {
                                FaultPolicy::Propagate => work(),
                                FaultPolicy::Quarantine => {
                                    if let Err(p) = catch_unwind(AssertUnwindSafe(work)) {
                                        faulted.push((*tid, payload_str(&*p)));
                                    }
                                }
                            }
                        }
                    }
                    self.snapshot.remove(x.id);
                }
                self.edges_seen += 1;
                self.snapshot.insert(e);
                let mut out = Vec::new();
                if let Some(targets) = self.dispatch.get(&e.signature()) {
                    for tid in targets {
                        if faulted.iter().any(|(f, _)| f == tid) {
                            continue;
                        }
                        let Some(t) = self.templates.get_mut(tid) else {
                            debug_assert!(false, "dispatch targets a live template");
                            continue;
                        };
                        let SharedTemplate { ref mut engine, ref subs, .. } = *t;
                        let snapshot = &self.snapshot;
                        let mut work = || {
                            for q in subs {
                                fail_point!(sites::PRE_PROBE, q.0);
                            }
                            let ms = match engine.insert_at(e, snapshot) {
                                Ok(ms) => ms,
                                // The gate sanitized the stream, so an
                                // engine-level rejection is a bug in THIS
                                // template's plumbing: under Quarantine it
                                // condemns only the template.
                                Err(err) => panic!("sanitized stream rejected: {err}"),
                            };
                            for q in subs {
                                fail_point!(sites::POST_RECORD, q.0);
                            }
                            ms
                        };
                        let ms = match self.fault_policy {
                            FaultPolicy::Propagate => Some(work()),
                            FaultPolicy::Quarantine => match catch_unwind(AssertUnwindSafe(work)) {
                                Ok(ms) => Some(ms),
                                Err(p) => {
                                    faulted.push((*tid, payload_str(&*p)));
                                    None
                                }
                            },
                        };
                        if let Some(ms) = ms {
                            let floors = engine.last_emission_floors();
                            fan_out(&mut self.subscribers, subs, &ms, floors, 1, &mut out);
                        }
                    }
                }
                out
            }
            DispatchMode::Broadcast => {
                self.edges_seen += 1;
                let mut out = Vec::new();
                for (tid, t) in self.templates.iter_mut() {
                    let SharedTemplate { ref mut engine, ref subs, .. } = *t;
                    let mut work = || {
                        for q in subs {
                            fail_point!(sites::PRE_EXPIRY, q.0);
                        }
                        for x in &ev.expired {
                            engine.expire(x);
                        }
                        for q in subs {
                            fail_point!(sites::PRE_PROBE, q.0);
                        }
                        let ms = engine.insert(e);
                        for q in subs {
                            fail_point!(sites::POST_RECORD, q.0);
                        }
                        ms
                    };
                    let ms = match self.fault_policy {
                        FaultPolicy::Propagate => Some(work()),
                        FaultPolicy::Quarantine => match catch_unwind(AssertUnwindSafe(work)) {
                            Ok(ms) => Some(ms),
                            Err(p) => {
                                faulted.push((*tid, payload_str(&*p)));
                                None
                            }
                        },
                    };
                    if let Some(ms) = ms {
                        fan_out(&mut self.subscribers, subs, &ms, &[], 1, &mut out);
                    }
                }
                out
            }
        };
        self.quarantine(faulted);
        self.tel_finish(tel_t0, tel_t0, 1, &out);
        Ok(out)
    }

    /// Tears down every faulted template: all its subscribers are
    /// unregistered and each gets one [`QueryFault`] (same payload, same
    /// edge sequence) — the whole-template blast radius of sharing.
    fn quarantine(&mut self, faulted: Vec<(TemplateId, String)>) {
        for (tid, payload) in faulted {
            let subs: Vec<QueryId> = match self.templates.get(&tid) {
                Some(t) => t.subs.clone(),
                None => {
                    debug_assert!(false, "faulted template was registered");
                    continue;
                }
            };
            for qid in subs {
                let removed = self.unregister_inner(qid);
                debug_assert!(removed, "faulted subscriber was registered");
                self.tel_event(EventKind::Quarantine {
                    qid: qid.0,
                    edge_seq: self.edges_seen,
                    payload: payload.chars().take(EVENT_PAYLOAD_CAP).collect(),
                });
                self.faults.push(QueryFault {
                    qid,
                    payload: payload.clone(),
                    edge_seq: self.edges_seen,
                });
            }
        }
    }

    /// Batch form of [`MultiQueryEngine::advance`]: one gate pass, one
    /// shared-window advance and signature-grouped dispatch for a whole
    /// batch. Panics on invalid input like [`MultiQueryEngine::advance`].
    pub fn advance_batch(&mut self, batch: &[StreamEdge]) -> Vec<(QueryId, MatchRecord)> {
        match self.try_advance_batch(batch) {
            Ok(out) => out,
            Err(err) => panic!("MultiQueryEngine::advance_batch fed invalid input: {err}"),
        }
    }

    /// [`MultiQueryEngine::try_advance`] folded over a batch, amortized:
    /// the gate validates every arrival up front (stopping at the first
    /// rejection, whose error is returned after the admitted prefix is
    /// processed), the shared window advances once, and arrivals are
    /// dispatched as *runs* — maximal consecutive same-signature spans
    /// with no intervening expiry — so each reacting template receives a
    /// contiguous sub-batch through
    /// [`TimingEngine::insert_batch_at`] instead of one call per edge.
    ///
    /// Each query's own match stream is byte-identical to the per-edge
    /// fold; the *interleaving* across queries differs (grouped per run ×
    /// template × subscriber instead of per edge × query). Quarantine
    /// semantics carry over: a panic anywhere in a template's sub-batch
    /// work condemns that template alone — it is skipped for the rest of
    /// the batch and torn down at the end (one fault per subscriber), and
    /// every other template still processes the full batch.
    pub fn try_advance_batch(
        &mut self,
        batch: &[StreamEdge],
    ) -> Result<Vec<(QueryId, MatchRecord)>, IngestError> {
        self.try_advance_batch_stamped(batch, None)
    }

    /// [`MultiQueryEngine::try_advance_batch`] with an externally
    /// stamped arrival instant: the sharded front-end stamps each chunk
    /// when it enters the worker queue, so detection latency includes
    /// queue wait, not just engine work. `None` falls back to the
    /// sampled internal stamp (semantics are otherwise identical).
    pub fn try_advance_batch_stamped(
        &mut self,
        batch: &[StreamEdge],
        arrived: Option<Instant>,
    ) -> Result<Vec<(QueryId, MatchRecord)>, IngestError> {
        // One sampling tick per batch; an external arrival stamp means
        // the caller already paid for the clock read, so detection is
        // recorded for the whole chunk while per-edge processing
        // latency stays on the sampled cadence.
        let tel_t0 = self.tel_stamp();
        let tel_arr = match arrived {
            Some(a) if self.tel.is_some() => Some(a),
            _ => tel_t0,
        };
        let mut admitted: Vec<StreamEdge> = Vec::with_capacity(batch.len());
        let mut failure: Option<IngestError> = None;
        for &e in batch {
            match self.gate.admit(e) {
                Ok(Some(e)) => admitted.push(e),
                Ok(None) => {}
                Err(err) => {
                    failure = Some(err);
                    break;
                }
            }
        }
        if tel_t0.is_some() {
            self.tel_record_keys(&admitted);
        }
        let ev = self.window.advance_batch(&admitted);
        let mut faulted: Vec<(TemplateId, String)> = Vec::new();
        let mut out: Vec<(QueryId, MatchRecord)> = Vec::new();
        for step in &ev.steps {
            match self.mode {
                DispatchMode::Signature => {
                    for x in &step.expired {
                        if let Some(targets) = self.dispatch.get(&x.signature()) {
                            for tid in targets {
                                if faulted.iter().any(|(f, _)| f == tid) {
                                    continue;
                                }
                                let Some(t) = self.templates.get_mut(tid) else {
                                    debug_assert!(false, "dispatch targets a live template");
                                    continue;
                                };
                                let SharedTemplate { ref mut engine, ref subs, .. } = *t;
                                let mut work = || {
                                    for q in subs {
                                        fail_point!(sites::PRE_EXPIRY, q.0);
                                    }
                                    engine.expire_partials(x);
                                };
                                match self.fault_policy {
                                    FaultPolicy::Propagate => work(),
                                    FaultPolicy::Quarantine => {
                                        if let Err(p) = catch_unwind(AssertUnwindSafe(work)) {
                                            faulted.push((*tid, payload_str(&*p)));
                                        }
                                    }
                                }
                            }
                        }
                        self.snapshot.remove(x.id);
                    }
                    self.edges_seen += step.arrivals.len() as u64;
                    // The whole step enters the snapshot before dispatch:
                    // engines only resolve ids they have stored, so edges
                    // admitted ahead of their own processing are invisible
                    // until their run is delivered.
                    for &a in &step.arrivals {
                        self.snapshot.insert(a);
                    }
                    let mut s = 0usize;
                    while s < step.arrivals.len() {
                        let sig = step.arrivals[s].signature();
                        let mut t = s + 1;
                        while t < step.arrivals.len() && step.arrivals[t].signature() == sig {
                            t += 1;
                        }
                        let run = &step.arrivals[s..t];
                        s = t;
                        let Some(targets) = self.dispatch.get(&sig) else {
                            continue;
                        };
                        for tid in targets {
                            if faulted.iter().any(|(f, _)| f == tid) {
                                continue;
                            }
                            let Some(t) = self.templates.get_mut(tid) else {
                                debug_assert!(false, "dispatch targets a live template");
                                continue;
                            };
                            let SharedTemplate { ref mut engine, ref subs, .. } = *t;
                            let snapshot = &self.snapshot;
                            let mut work = || {
                                for q in subs {
                                    fail_point!(sites::PRE_PROBE, q.0);
                                }
                                let ms = match engine.insert_batch_at(run, snapshot) {
                                    Ok(ms) => ms,
                                    // The gate sanitized the stream: an
                                    // engine-level rejection is a bug in
                                    // THIS template's plumbing.
                                    Err(err) => panic!("sanitized stream rejected: {err}"),
                                };
                                for q in subs {
                                    fail_point!(sites::POST_RECORD, q.0);
                                }
                                ms
                            };
                            let ms = match self.fault_policy {
                                FaultPolicy::Propagate => Some(work()),
                                FaultPolicy::Quarantine => {
                                    match catch_unwind(AssertUnwindSafe(work)) {
                                        Ok(ms) => Some(ms),
                                        Err(p) => {
                                            faulted.push((*tid, payload_str(&*p)));
                                            None
                                        }
                                    }
                                }
                            };
                            if let Some(ms) = ms {
                                let floors = engine.last_emission_floors();
                                fan_out(
                                    &mut self.subscribers,
                                    subs,
                                    &ms,
                                    floors,
                                    run.len() as u64,
                                    &mut out,
                                );
                            }
                        }
                    }
                }
                DispatchMode::Broadcast => {
                    self.edges_seen += step.arrivals.len() as u64;
                    for (tid, t) in self.templates.iter_mut() {
                        if faulted.iter().any(|(f, _)| f == tid) {
                            continue;
                        }
                        let SharedTemplate { ref mut engine, ref subs, .. } = *t;
                        let mut work = || {
                            for q in subs {
                                fail_point!(sites::PRE_EXPIRY, q.0);
                            }
                            for x in &step.expired {
                                engine.expire(x);
                            }
                            for q in subs {
                                fail_point!(sites::PRE_PROBE, q.0);
                            }
                            let ms = match engine.insert_batch(&step.arrivals) {
                                Ok(ms) => ms,
                                Err(err) => panic!("sanitized stream rejected: {err}"),
                            };
                            for q in subs {
                                fail_point!(sites::POST_RECORD, q.0);
                            }
                            ms
                        };
                        let ms = match self.fault_policy {
                            FaultPolicy::Propagate => Some(work()),
                            FaultPolicy::Quarantine => match catch_unwind(AssertUnwindSafe(work)) {
                                Ok(ms) => Some(ms),
                                Err(p) => {
                                    faulted.push((*tid, payload_str(&*p)));
                                    None
                                }
                            },
                        };
                        if let Some(ms) = ms {
                            fan_out(
                                &mut self.subscribers,
                                subs,
                                &ms,
                                &[],
                                step.arrivals.len() as u64,
                                &mut out,
                            );
                        }
                    }
                }
            }
        }
        self.quarantine(faulted);
        self.tel_finish(tel_t0, tel_arr, admitted.len() as u64, &out);
        match failure {
            Some(err) => Err(err),
            None => Ok(out),
        }
    }

    /// Per-query counters (normalized — see [`QueryStats::stats`]) and
    /// per-template counters, plus the shared-snapshot bytes, counted
    /// once. Template store bytes appear once each, attributed to the
    /// template's earliest live subscriber.
    pub fn stats(&self) -> MultiStats {
        let queries = self
            .subscribers
            .iter()
            .map(|(&id, sub)| {
                let Some(t) = self.templates.get(&sub.template) else {
                    unreachable!("subscriber references a live template");
                };
                let mut stats = stats_since(&t.engine.stats(), &sub.stats_base);
                // The engine-wide emission count includes matches the
                // epoch filter withheld from this subscriber; its own
                // count is authoritative.
                stats.matches_emitted = sub.emitted;
                // Arrivals since registration the dispatch index filtered
                // out: an independent engine would have processed and
                // discarded them (no candidate query edge, by
                // construction of the index).
                let since = self.edges_seen - sub.seen_base;
                let unrouted = since - sub.routed;
                stats.edges_processed += unrouted;
                stats.edges_discarded += unrouted;
                let store_bytes = if t.subs.first() == Some(&id) {
                    match self.mode {
                        DispatchMode::Signature => t.engine.store_space_bytes(),
                        DispatchMode::Broadcast => t.engine.space_bytes(),
                    }
                } else {
                    0
                };
                QueryStats { id, stats, routed: sub.routed, emitted: sub.emitted, store_bytes }
            })
            .collect();
        let templates = self
            .templates
            .values()
            .map(|t| TemplateStats {
                digest: t.fp.as_ref().map_or(0, PlanFingerprint::digest),
                subscribers: t.subs.len(),
                stats: t.engine.stats(),
                store_bytes: match self.mode {
                    DispatchMode::Signature => t.engine.store_space_bytes(),
                    DispatchMode::Broadcast => t.engine.space_bytes(),
                },
            })
            .collect();
        MultiStats {
            queries,
            templates,
            snapshot_bytes: match self.mode {
                DispatchMode::Signature => self.snapshot.space_bytes(),
                DispatchMode::Broadcast => 0,
            },
            edges_seen: self.edges_seen,
            faults: self.faults.clone(),
            ingest: self.gate.stats(),
            shards: Vec::new(),
        }
    }

    /// Normalized counters of one query, if registered.
    pub fn stats_of(&self, id: QueryId) -> Option<EngineStats> {
        let sub = self.subscribers.get(&id)?;
        let t = self.templates.get(&sub.template)?;
        let mut stats = stats_since(&t.engine.stats(), &sub.stats_base);
        stats.matches_emitted = sub.emitted;
        let unrouted = (self.edges_seen - sub.seen_base) - sub.routed;
        stats.edges_processed += unrouted;
        stats.edges_discarded += unrouted;
        Some(stats)
    }

    /// Raw routing counters of one query, if registered: `(arrivals
    /// routed to its template since it registered, matches emitted to it
    /// after epoch filtering)`.
    pub fn counters_of(&self, id: QueryId) -> Option<(u64, u64)> {
        self.subscribers.get(&id).map(|s| (s.routed, s.emitted))
    }

    /// Live complete matches of one query's template engine, if
    /// registered (template-wide under sharing: a late subscriber's
    /// epoch filter applies to emission, not to the store).
    pub fn live_match_count(&self, id: QueryId) -> Option<usize> {
        let sub = self.subscribers.get(&id)?;
        self.templates.get(&sub.template).map(|t| t.engine.live_match_count())
    }

    /// Total bytes: shared snapshot once plus every template's store
    /// once (see [`MultiStats::space_bytes`]).
    pub fn space_bytes(&self) -> usize {
        self.stats().space_bytes()
    }

    /// Edges currently inside the shared window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Runs the full [`tcs_core::store::StoreAudit`] sweep over every
    /// template's store (plus each engine's `live_partials == store_rows`
    /// cross-check), prefixing each violation's detail with the owning
    /// template's subscriber ids.
    pub fn audit(&self) -> Vec<tcs_core::store::AuditViolation> {
        let mut out = Vec::new();
        for t in self.templates.values() {
            let owners = t.subs.iter().map(|q| q.0.to_string()).collect::<Vec<_>>().join(",");
            for mut v in t.engine.audit() {
                v.detail = format!("query {owners}: {}", v.detail);
                out.push(v);
            }
        }
        out
    }

    /// Panics with every [`MultiQueryEngine::audit`] violation.
    pub fn assert_clean(&self) {
        let violations = self.audit();
        assert!(
            violations.is_empty(),
            "multi-query store audit failed:\n{}",
            tcs_core::store::format_violations(&violations)
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use tcs_core::PlanOptions;
    use tcs_graph::query::QueryEdge;
    use tcs_graph::{EdgeId, QueryGraph};

    /// 2-path query over the tenant's private label space
    /// `(3t, 3t+1, 3t+2)`, timed `ε0 ≺ ε1`.
    fn tenant_query(t: u16) -> QueryGraph {
        QueryGraph::new(
            vec![VLabel(3 * t), VLabel(3 * t + 1), VLabel(3 * t + 2)],
            vec![
                QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
                QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            ],
            &[(0, 1)],
        )
        .unwrap()
    }

    fn plan(t: u16) -> QueryPlan {
        QueryPlan::build(tenant_query(t), PlanOptions::timing())
    }

    /// Opening (a→b) and closing (b→c) edges of tenant `t`'s 2-chain.
    fn open_edge(id: u64, t: u16, ts: u64) -> StreamEdge {
        StreamEdge::new(id, 100 + id as u32, 3 * t, 200 + t as u32, 3 * t + 1, 0, ts)
    }
    fn close_edge(id: u64, t: u16, ts: u64) -> StreamEdge {
        StreamEdge::new(id, 200 + t as u32, 3 * t + 1, 300 + id as u32, 3 * t + 2, 0, ts)
    }

    #[test]
    fn dispatch_routes_only_matching_tenants() {
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = multi.register(plan(0));
        let q1 = multi.register(plan(1));
        assert_eq!(multi.n_queries(), 2);
        assert_eq!(multi.n_templates(), 2);
        assert!(multi.advance(open_edge(1, 0, 1)).is_empty());
        let out = multi.advance(close_edge(2, 0, 2));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, q0);
        // Tenant 1 never saw either edge.
        let s1 = multi.stats_of(q1).unwrap();
        assert_eq!(s1.edges_processed, 2);
        assert_eq!(s1.edges_discarded, 2);
        assert_eq!(s1.matches_emitted, 0);
        // Tenant 0 processed both for real.
        let s0 = multi.stats_of(q0).unwrap();
        assert_eq!(s0.edges_processed, 2);
        assert_eq!(s0.matches_emitted, 1);
        assert_eq!(multi.live_match_count(q0), Some(1));
    }

    #[test]
    fn unregister_drops_state_and_dispatch_entries() {
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = multi.register(plan(0));
        multi.advance(open_edge(1, 0, 1));
        multi.advance(close_edge(2, 0, 2));
        assert!(multi.wants(open_edge(9, 0, 9).signature()));
        assert!(multi.unregister(q0));
        assert!(!multi.unregister(q0), "double unregister reports unknown");
        assert!(!multi.wants(open_edge(9, 0, 9).signature()));
        assert_eq!(multi.n_queries(), 0);
        assert_eq!(multi.n_templates(), 0);
        // The stream keeps flowing; nobody reacts.
        assert!(multi.advance(close_edge(3, 0, 3)).is_empty());
        assert_eq!(multi.stats().space_bytes(), multi.stats().snapshot_bytes);
    }

    #[test]
    fn late_registration_starts_fresh() {
        // A query registered between the opening and closing edge of its
        // pattern must NOT see the opening edge (no replay): no match.
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        multi.advance(open_edge(1, 0, 1));
        let q0 = multi.register(plan(0));
        assert!(multi.advance(close_edge(2, 0, 2)).is_empty());
        // A full pattern after registration does match.
        multi.advance(open_edge(3, 0, 3));
        let out = multi.advance(close_edge(4, 0, 4));
        assert_eq!(out, vec![(q0, MatchRecord::from(vec![EdgeId(3), EdgeId(4)]))]);
        // Stats count the pre-registration edge not at all, the
        // post-registration ones fully.
        let s = multi.stats_of(q0).unwrap();
        assert_eq!(s.edges_processed, 3);
    }

    #[test]
    fn expiry_is_routed_through_the_shared_window() {
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(5);
        let q0 = multi.register(plan(0));
        multi.advance(open_edge(1, 0, 1));
        let out = multi.advance(close_edge(2, 0, 2));
        assert_eq!(out.len(), 1);
        assert_eq!(multi.live_match_count(q0), Some(1));
        // ts=10 expires both pattern edges: the match disappears and the
        // snapshot shrinks with the window.
        multi.advance(open_edge(3, 1, 10));
        assert_eq!(multi.live_match_count(q0), Some(0));
        assert_eq!(multi.window_len(), 1);
        let st = multi.stats();
        assert!(st.queries[0].stats.partials_deleted >= 2);
    }

    #[test]
    fn broadcast_mode_matches_signature_mode() {
        let mut sig: MultiQueryEngine = MultiQueryEngine::new(6);
        let mut bc: MultiQueryEngine = MultiQueryEngine::with_mode(6, DispatchMode::Broadcast);
        for t in 0..3u16 {
            sig.register(plan(t));
            bc.register(plan(t));
        }
        let mut id = 0u64;
        let mut ts = 0u64;
        for round in 0..40u64 {
            let t = (round % 3) as u16;
            id += 1;
            ts += 1;
            let e = if round % 2 == 0 { open_edge(id, t, ts) } else { close_edge(id, t, ts) };
            let a = sig.advance(e);
            let b = bc.advance(e);
            assert_eq!(a, b, "round {round}");
        }
        let (sa, sb) = (sig.stats(), bc.stats());
        assert_eq!(sa.queries.len(), sb.queries.len());
        for (qa, qb) in sa.queries.iter().zip(&sb.queries) {
            assert_eq!(qa.id, qb.id);
            assert_eq!(qa.stats, qb.stats, "normalized stats agree across modes");
        }
        // Broadcast pays for 3 private windows; signature mode holds the
        // snapshot once and only per-query stores on top.
        assert_eq!(sb.snapshot_bytes, 0);
        assert!(sa.snapshot_bytes > 0);
    }

    /// Batched dispatch must match the per-edge fold per query — same
    /// per-query match subsequences, same normalized stats — in both
    /// dispatch modes, with a registration landing between batches.
    #[test]
    fn advance_batch_matches_per_edge_fold() {
        for mode in [DispatchMode::Signature, DispatchMode::Broadcast] {
            let mut per: MultiQueryEngine = MultiQueryEngine::with_mode(12, mode);
            let mut bat: MultiQueryEngine = MultiQueryEngine::with_mode(12, mode);
            for t in 0..2u16 {
                per.register(plan(t));
                bat.register(plan(t));
            }
            let mut edges = Vec::new();
            let mut id = 0u64;
            for round in 0..60u64 {
                let t = (round % 2) as u16;
                id += 1;
                // Consecutive same-signature arrivals (runs) and window
                // expiries both occur on this stream.
                let e = if round % 4 < 2 {
                    open_edge(id, t, round + 1)
                } else {
                    close_edge(id, t, round + 1)
                };
                edges.push(e);
            }
            let mut out_per: Vec<(QueryId, MatchRecord)> = Vec::new();
            let mut out_bat: Vec<(QueryId, MatchRecord)> = Vec::new();
            for (bi, chunk) in edges.chunks(7).enumerate() {
                if bi == 3 {
                    // A registration between batches must behave like one
                    // at the same stream position of the per-edge fold.
                    per.register(plan(2));
                    bat.register(plan(2));
                }
                for &e in chunk {
                    out_per.extend(per.advance(e));
                }
                out_bat.extend(bat.advance_batch(chunk));
            }
            // Per-query subsequences are byte-identical (cross-query
            // interleaving legitimately differs: run × query grouping).
            for qid in per.query_ids() {
                let a: Vec<&MatchRecord> =
                    out_per.iter().filter(|(q, _)| *q == qid).map(|(_, m)| m).collect();
                let b: Vec<&MatchRecord> =
                    out_bat.iter().filter(|(q, _)| *q == qid).map(|(_, m)| m).collect();
                assert_eq!(a, b, "query {qid:?} mode {mode:?}");
                assert_eq!(per.stats_of(qid), bat.stats_of(qid), "stats {qid:?} {mode:?}");
            }
            assert!(!out_per.is_empty());
            assert_eq!(per.ingest_stats(), bat.ingest_stats());
            per.assert_clean();
            bat.assert_clean();
        }
    }

    /// The PerEdge ablation of the batched path is equivalent too, and
    /// switching it on mid-stream (between batches) is safe.
    #[test]
    fn advance_batch_per_edge_mode_equivalent() {
        let mut srt: MultiQueryEngine = MultiQueryEngine::new(20);
        let mut per: MultiQueryEngine = MultiQueryEngine::new(20);
        per.set_batch_mode(BatchMode::PerEdge);
        assert_eq!(per.batch_mode(), BatchMode::PerEdge);
        srt.register(plan(0));
        per.register(plan(0));
        let mut id = 0;
        let mut edges = Vec::new();
        for round in 0..30u64 {
            id += 1;
            let e = if round % 3 == 0 {
                open_edge(id, 0, round + 1)
            } else {
                close_edge(id, 0, round + 1)
            };
            edges.push(e);
        }
        for chunk in edges.chunks(5) {
            let a = srt.advance_batch(chunk);
            let b = per.advance_batch(chunk);
            assert_eq!(a, b);
        }
        let (sa, sb) = (srt.stats(), per.stats());
        assert_eq!(sa.queries[0].stats, sb.queries[0].stats);
    }

    /// Two registrations of a fingerprint-identical plan share one
    /// template and one store; both receive every post-registration
    /// match; the refcounted teardown keeps the engine alive until the
    /// last subscriber leaves.
    #[test]
    fn identical_plans_share_one_template() {
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = multi.register(plan(0));
        let q1 = multi.register(plan(0));
        assert_eq!(multi.n_queries(), 2);
        assert_eq!(multi.n_templates(), 1, "identical plans share one engine");
        multi.advance(open_edge(1, 0, 1));
        let out = multi.advance(close_edge(2, 0, 2));
        let want = MatchRecord::from(vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(out, vec![(q0, want.clone()), (q1, want.clone())]);
        // Store bytes appear once across the pair.
        let st = multi.stats();
        assert_eq!(st.templates.len(), 1);
        assert_eq!(st.templates[0].subscribers, 2);
        let paid: Vec<usize> =
            st.queries.iter().map(|q| q.store_bytes).filter(|&b| b > 0).collect();
        assert_eq!(paid.len(), 1, "template store billed exactly once");
        // Unregistering one subscriber keeps the template running (the
        // earlier opener e1 is still in-window, so the close pairs with
        // both openers).
        assert!(multi.unregister(q0));
        assert_eq!(multi.n_templates(), 1);
        multi.advance(open_edge(3, 0, 3));
        let out = multi.advance(close_edge(4, 0, 4));
        assert_eq!(
            out,
            vec![
                (q1, MatchRecord::from(vec![EdgeId(1), EdgeId(4)])),
                (q1, MatchRecord::from(vec![EdgeId(3), EdgeId(4)])),
            ]
        );
        // The last unregister tears the template down.
        assert!(multi.unregister(q1));
        assert_eq!(multi.n_templates(), 0);
        assert!(!multi.wants(open_edge(9, 0, 9).signature()));
    }

    /// A late subscriber to a warm shared template sees only matches
    /// completed from edges that arrived after its registration — the
    /// same fresh-start semantics as a private engine — while the
    /// founder keeps seeing everything.
    #[test]
    fn late_subscriber_to_warm_template_starts_fresh() {
        let mut shared: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = shared.register(plan(0));
        // Warm the engine: one full match plus a dangling opener.
        shared.advance(open_edge(1, 0, 1));
        shared.advance(close_edge(2, 0, 2));
        shared.advance(open_edge(3, 0, 3));
        let q1 = shared.register(plan(0));
        assert_eq!(shared.n_templates(), 1);
        // The close completes matches whose openers (e1, e3) predate q1:
        // only the founder sees them (a private engine for q1 would hold
        // no opener).
        let out = shared.advance(close_edge(4, 0, 4));
        assert_eq!(
            out,
            vec![
                (q0, MatchRecord::from(vec![EdgeId(1), EdgeId(4)])),
                (q0, MatchRecord::from(vec![EdgeId(3), EdgeId(4)])),
            ]
        );
        // A fully post-registration episode reaches both; the warm
        // openers keep pairing for the founder alone.
        shared.advance(open_edge(5, 0, 5));
        let out = shared.advance(close_edge(6, 0, 6));
        let q1_out: Vec<&MatchRecord> =
            out.iter().filter(|(q, _)| *q == q1).map(|(_, m)| m).collect();
        assert_eq!(q1_out, vec![&MatchRecord::from(vec![EdgeId(5), EdgeId(6)])]);
        assert_eq!(out.iter().filter(|(q, _)| *q == q0).count(), 3);
        // Normalized stats: q1 saw 3 arrivals, emitted 1.
        let s1 = shared.stats_of(q1).unwrap();
        assert_eq!(s1.matches_emitted, 1);
        assert_eq!(s1.edges_processed, 3);
        assert_eq!(shared.counters_of(q1), Some((3, 1)));
    }

    /// `ShareMode::Private` is the true one-engine-per-query ablation:
    /// same match streams, N× the templates and the store bytes.
    #[test]
    fn private_share_mode_runs_one_engine_per_query() {
        let mut shared: MultiQueryEngine = MultiQueryEngine::new(100);
        let mut private: MultiQueryEngine = MultiQueryEngine::new(100);
        private.set_share_mode(ShareMode::Private);
        assert_eq!(private.share_mode(), ShareMode::Private);
        for _ in 0..4 {
            shared.register(plan(0));
            private.register(plan(0));
        }
        assert_eq!(shared.n_templates(), 1);
        assert_eq!(private.n_templates(), 4);
        let mut id = 0u64;
        for round in 0..20u64 {
            id += 1;
            let e = if round % 2 == 0 {
                open_edge(id, 0, round + 1)
            } else {
                close_edge(id, 0, round + 1)
            };
            let a = shared.advance(e);
            let b = private.advance(e);
            assert_eq!(a, b, "round {round}");
        }
        let (sa, sb) = (shared.stats(), private.stats());
        for (qa, qb) in sa.queries.iter().zip(&sb.queries) {
            assert_eq!(qa.stats, qb.stats);
        }
        let shared_store: usize = sa.queries.iter().map(|q| q.store_bytes).sum();
        let private_store: usize = sb.queries.iter().map(|q| q.store_bytes).sum();
        assert!(
            private_store >= 3 * shared_store,
            "4 private stores ({private_store}B) dwarf 1 shared store ({shared_store}B)"
        );
    }

    /// A plan with duplicate leaf signatures (two query edges sharing one
    /// `(VLabel, VLabel, ELabel)` triple) must receive each arriving edge
    /// exactly once: the dispatch index is keyed per distinct signature,
    /// so a duplicated signature cannot produce a second bucket entry and
    /// a doubled delivery (which would double-count stats and re-emit
    /// matches).
    #[test]
    fn duplicate_leaf_signatures_dispatch_once() {
        // v0(L0) →ε0 v1(L1) ←ε1 v2(L0), ε0 ≺ ε1: both query edges carry
        // the signature (L0, L1, NONE).
        let q = QueryGraph::new(
            vec![VLabel(0), VLabel(1), VLabel(0)],
            vec![
                QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
                QueryEdge { src: 2, dst: 1, label: ELabel::NONE },
            ],
            &[(0, 1)],
        )
        .unwrap();
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = multi.register(QueryPlan::build(q, PlanOptions::timing()));
        assert!(multi.advance(StreamEdge::new(1, 10, 0, 20, 1, 0, 1)).is_empty());
        let out = multi.advance(StreamEdge::new(2, 30, 0, 20, 1, 0, 2));
        assert_eq!(out, vec![(q0, MatchRecord::from(vec![EdgeId(1), EdgeId(2)]))]);
        // Each arrival processed exactly once and the match emitted
        // exactly once — a doubled dispatch entry would show 4 routed
        // deliveries and a duplicate record.
        assert_eq!(multi.counters_of(q0), Some((2, 1)));
        let s = multi.stats_of(q0).unwrap();
        assert_eq!(s.edges_processed, 2);
        assert_eq!(s.matches_emitted, 1);
    }

    /// Subscribers whose plan lists the same edges in a different order
    /// still share the template, and each receives records in its *own*
    /// edge order.
    #[test]
    fn permuted_plan_shares_template_with_remapped_records() {
        // plan(0) lists (a→b) then (b→c); the permuted twin lists them
        // reversed and renumbers its vertices.
        let permuted = QueryGraph::new(
            vec![VLabel(2), VLabel(0), VLabel(1)],
            vec![
                QueryEdge { src: 2, dst: 0, label: ELabel::NONE },
                QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            ],
            &[(1, 0)],
        )
        .unwrap();
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = multi.register(plan(0));
        let q1 = multi.register(QueryPlan::build(permuted, PlanOptions::timing()));
        assert_eq!(multi.n_templates(), 1, "permuted twin shares the template");
        multi.advance(open_edge(1, 0, 1));
        let out = multi.advance(close_edge(2, 0, 2));
        assert_eq!(
            out,
            vec![
                (q0, MatchRecord::from(vec![EdgeId(1), EdgeId(2)])),
                // q1's edge 0 is the closing (b→c) edge, edge 1 the opener.
                (q1, MatchRecord::from(vec![EdgeId(2), EdgeId(1)])),
            ]
        );
    }
}
