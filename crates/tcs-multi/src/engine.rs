//! The shared-snapshot query registry with signature-routed dispatch.
//!
//! One [`MultiQueryEngine`] owns one [`SlidingWindow`] and one
//! [`Snapshot`]; every registered query runs a [`TimingEngine`] against
//! that snapshot through the `insert_at`/`expire_partials` split (see the
//! crate docs for the dispatch-index lifecycle and registration
//! semantics, and `tcs_core::engine` for the split itself).

use crate::fault::{payload_str, FaultPolicy, QueryFault, ShardHealth};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use tcs_core::engine::EngineStats;
use tcs_core::fail_point;
use tcs_core::failpoints::sites;
use tcs_core::store::MatchStore;
use tcs_core::{
    BatchMode, IngestError, IngestGate, IngestStats, MsTreeStore, OrderPolicy, QueryPlan,
    TimingEngine,
};
use tcs_graph::{ELabel, MatchRecord, SlidingWindow, Snapshot, StreamEdge, VLabel};

/// Identifier of a registered query, unique for the lifetime of the
/// engine (ids of unregistered queries are never reused).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

/// How arriving/expiring edges reach the registered queries.
///
/// [`DispatchMode::Signature`] (the default) routes each edge through the
/// leaf-signature dispatch index and maintains the shared snapshot —
/// per-edge work is O(queries that can react).
/// [`DispatchMode::Broadcast`] is the ablation baseline the speedup gate
/// measures against: every edge is delivered to every registered engine
/// through the standalone `insert`/`expire` path, so each engine keeps
/// its own private window copy — exactly N independent [`TimingEngine`]s
/// sharing nothing, the only deployment shape available before this
/// subsystem. Both modes emit identical per-query match streams and
/// stats (test-enforced).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DispatchMode {
    /// Signature-routed dispatch over the shared snapshot (fast path).
    #[default]
    Signature,
    /// Broadcast to all engines, private windows (N-independent-engines
    /// ablation baseline).
    Broadcast,
}

/// Per-query counters and space share reported by
/// [`MultiQueryEngine::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryStats {
    /// The query.
    pub id: QueryId,
    /// Engine counters, normalized to what an independent engine fed the
    /// same stream (from this query's registration on) would report:
    /// arrivals the dispatch index filtered out are counted as processed
    /// and discarded, because that is what the engine itself would have
    /// done with them.
    pub stats: EngineStats,
    /// Bytes attributable to this query alone: its partial-match store
    /// in [`DispatchMode::Signature`] (the shared snapshot is reported
    /// once, in [`MultiStats::snapshot_bytes`]), its store *plus* its
    /// private window copy in [`DispatchMode::Broadcast`] — the N×
    /// duplication dispatch mode eliminates.
    pub store_bytes: usize,
}

/// Aggregate report of [`MultiQueryEngine::stats`]: per-query counters
/// plus the shared-window bytes, counted once.
#[derive(Clone, Debug, Default)]
pub struct MultiStats {
    /// One entry per registered query, in registration (id) order.
    pub queries: Vec<QueryStats>,
    /// Bytes of the shared snapshot — the whole point of the shared
    /// window is that this appears once here instead of once per query
    /// (0 in [`DispatchMode::Broadcast`], where each engine pays for its
    /// own copy inside [`QueryStats::store_bytes`]).
    pub snapshot_bytes: usize,
    /// Arrivals the engine has seen since construction.
    pub edges_seen: u64,
    /// Every query quarantined so far, in fault order (see
    /// [`FaultPolicy::Quarantine`]). Quarantined queries no longer appear
    /// in [`MultiStats::queries`]; this log is how their fate is read.
    pub faults: Vec<QueryFault>,
    /// Ingestion-boundary counters: what the gate admitted, clamped,
    /// dropped and rejected (see `tcs_core::ingest`). Kept apart from the
    /// per-query [`EngineStats`] so those stay oracle-comparable.
    pub ingest: IngestStats,
    /// Per-shard health (shed counts, worker restarts) — filled by
    /// [`ShardedMultiEngine::stats`](crate::ShardedMultiEngine::stats),
    /// empty for a serial registry.
    pub shards: Vec<ShardHealth>,
}

impl MultiStats {
    /// Total bytes: the shared snapshot once plus every query's own
    /// store.
    pub fn space_bytes(&self) -> usize {
        self.snapshot_bytes + self.queries.iter().map(|q| q.store_bytes).sum::<usize>()
    }

    /// Sum of the per-query counters.
    pub fn total(&self) -> EngineStats {
        let mut t = EngineStats::default();
        for q in &self.queries {
            t.edges_processed += q.stats.edges_processed;
            t.edges_discarded += q.stats.edges_discarded;
            t.matches_emitted += q.stats.matches_emitted;
            t.partials_inserted += q.stats.partials_inserted;
            t.partials_deleted += q.stats.partials_deleted;
            t.join_ops += q.stats.join_ops;
        }
        t
    }
}

/// One registered query: its engine plus the routing counters the stats
/// normalization needs.
struct Registered<S: MatchStore> {
    engine: TimingEngine<S>,
    /// Arrivals actually delivered to the engine.
    routed: u64,
    /// Value of `edges_seen` when the query registered.
    seen_base: u64,
}

/// A dynamic registry of standing queries over one shared window.
///
/// See the crate docs for the dispatch-index lifecycle, registration
/// semantics, and the equivalence guarantee against independent engines.
pub struct MultiQueryEngine<S: MatchStore = MsTreeStore> {
    window: SlidingWindow,
    /// The shared live window `G_t`, one copy for all queries.
    snapshot: Snapshot,
    queries: BTreeMap<QueryId, Registered<S>>,
    /// signature → registered queries with a query edge of that
    /// signature, each bucket in id order.
    dispatch: HashMap<(VLabel, VLabel, ELabel), Vec<QueryId>>,
    mode: DispatchMode,
    edges_seen: u64,
    next_id: u64,
    id_stride: u64,
    /// The typed ingestion boundary: every arrival passes the gate before
    /// it can touch the window, the snapshot, or any engine.
    gate: IngestGate,
    /// What a panic inside one query's per-arrival work becomes.
    fault_policy: FaultPolicy,
    /// Quarantined queries, in fault order.
    faults: Vec<QueryFault>,
    /// How [`MultiQueryEngine::advance_batch`] applies routed sub-batches
    /// inside each engine (propagated to engines at registration).
    batch_mode: BatchMode,
}

impl<S: MatchStore> MultiQueryEngine<S> {
    /// An empty registry over a window of the given duration, in
    /// [`DispatchMode::Signature`].
    pub fn new(window: u64) -> Self {
        Self::with_mode(window, DispatchMode::Signature)
    }

    /// An empty registry with an explicit dispatch mode. The mode is
    /// fixed for the engine's lifetime: the two modes keep window state
    /// in different places (shared snapshot vs private engine maps), so
    /// switching mid-stream would strand one of them.
    pub fn with_mode(window: u64, mode: DispatchMode) -> Self {
        Self::with_id_stride(window, mode, 0, 1)
    }

    /// An empty registry whose [`QueryId`]s are `first, first + stride,
    /// first + 2·stride, …` — shard `i` of an `n`-shard front-end uses
    /// `(i, n)` so ids stay globally unique without coordination.
    pub fn with_id_stride(window: u64, mode: DispatchMode, first: u64, stride: u64) -> Self {
        assert!(stride >= 1, "id stride must be positive");
        MultiQueryEngine {
            window: SlidingWindow::new(window),
            snapshot: Snapshot::new(),
            queries: BTreeMap::new(),
            dispatch: HashMap::new(),
            mode,
            edges_seen: 0,
            next_id: first,
            id_stride: stride,
            gate: IngestGate::new(window, OrderPolicy::default()),
            fault_policy: FaultPolicy::default(),
            faults: Vec::new(),
            batch_mode: BatchMode::default(),
        }
    }

    /// How routed sub-batches are applied inside each query's engine.
    pub fn batch_mode(&self) -> BatchMode {
        self.batch_mode
    }

    /// Sets the per-engine batch mode — [`BatchMode::PerEdge`] is the
    /// ablation baseline of the batch bench gate. Applies to every
    /// registered engine and to future registrations.
    pub fn set_batch_mode(&mut self, mode: BatchMode) {
        self.batch_mode = mode;
        for reg in self.queries.values_mut() {
            reg.engine.set_batch_mode(mode);
        }
    }

    /// The active out-of-order arrival policy of the ingestion gate.
    pub fn order_policy(&self) -> OrderPolicy {
        self.gate.policy()
    }

    /// Replaces the ingestion gate's out-of-order policy (effective from
    /// the next arrival).
    pub fn set_order_policy(&mut self, policy: OrderPolicy) {
        self.gate.set_policy(policy);
    }

    /// Ingestion-boundary counters so far.
    pub fn ingest_stats(&self) -> IngestStats {
        self.gate.stats()
    }

    /// The active per-query panic policy.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Replaces the per-query panic policy (effective from the next
    /// arrival). [`FaultPolicy::Propagate`] is the default for a bare
    /// registry; [`ShardedMultiEngine`](crate::ShardedMultiEngine) puts
    /// its shards under [`FaultPolicy::Quarantine`].
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.fault_policy = policy;
    }

    /// Every query quarantined so far, in fault order.
    pub fn faults(&self) -> &[QueryFault] {
        &self.faults
    }

    /// The dispatch mode fixed at construction.
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// Number of registered queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Ids of the registered queries, in registration (id) order.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// The distinct signatures the registry currently reacts to (the
    /// dispatch index keys). A sharded front-end unions these per shard
    /// into its routing table.
    pub fn signatures(&self) -> impl Iterator<Item = (VLabel, VLabel, ELabel)> + '_ {
        self.dispatch.keys().copied()
    }

    /// Whether any registered query can react to this signature.
    #[inline]
    pub fn wants(&self, sig: (VLabel, VLabel, ELabel)) -> bool {
        self.dispatch.contains_key(&sig)
    }

    /// Registers a compiled plan as a standing query, effective from the
    /// next arrival; returns its id. Edges already inside the window are
    /// not replayed (crate docs, "Registration semantics"). Ids are never
    /// reused — in particular not those of quarantined queries, so a
    /// registration after a fault can never inherit stale dispatch
    /// entries (regression-tested).
    pub fn register(&mut self, plan: QueryPlan) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id = match self.next_id.checked_add(self.id_stride) {
            Some(n) => n,
            None => panic!("query ids exhausted"),
        };
        self.register_as(id, plan);
        id
    }

    /// Registers a plan under a caller-chosen id — the supervisor's
    /// re-homing path, where surviving queries keep their public ids
    /// across a shard rebuild. The id must be unused and must never
    /// collide with ids the stride will produce (callers pass ids the
    /// stride already produced).
    pub(crate) fn register_as(&mut self, id: QueryId, plan: QueryPlan) {
        debug_assert!(!self.queries.contains_key(&id), "query id {id:?} already registered");
        for sig in plan.signatures() {
            let bucket = self.dispatch.entry(sig).or_default();
            debug_assert!(!bucket.contains(&id));
            bucket.push(id);
        }
        let mut engine = TimingEngine::new(plan);
        engine.set_batch_mode(self.batch_mode);
        let reg = Registered { engine, routed: 0, seen_base: self.edges_seen };
        self.queries.insert(id, reg);
    }

    /// The next id [`MultiQueryEngine::register`] would hand out — a
    /// rebuilt shard resumes the sequence so ids stay unique across
    /// restarts.
    pub(crate) fn next_raw_id(&self) -> u64 {
        self.next_id
    }

    /// The registered queries as `(id, plan)` pairs in id order — what a
    /// supervisor re-homes after this registry's worker died.
    pub(crate) fn registrations(&self) -> Vec<(QueryId, QueryPlan)> {
        self.queries.iter().map(|(&id, reg)| (id, reg.engine.plan().clone())).collect()
    }

    /// Carries a predecessor's fault log into this registry (shard
    /// rebuild: the log survives the worker).
    pub(crate) fn adopt_faults(&mut self, faults: Vec<QueryFault>) {
        let mut faults = faults;
        faults.extend(std::mem::take(&mut self.faults));
        self.faults = faults;
    }

    /// Drops a standing query and its dispatch entries; its partial
    /// matches disappear immediately. Returns false if the id is unknown
    /// (already unregistered).
    pub fn unregister(&mut self, id: QueryId) -> bool {
        let Some(reg) = self.queries.remove(&id) else {
            return false;
        };
        for sig in reg.engine.plan().signatures() {
            let std::collections::hash_map::Entry::Occupied(mut bucket) = self.dispatch.entry(sig)
            else {
                unreachable!("registered signature has a dispatch bucket");
            };
            bucket.get_mut().retain(|&q| q != id);
            if bucket.get().is_empty() {
                bucket.remove();
            }
        }
        true
    }

    /// Slides the shared window to the arrival and routes the resulting
    /// expiries + insertion to the queries that can react. Returns the
    /// newly completed matches as `(query, match)` pairs, grouped by
    /// query in id order, each query's matches in its own emission order.
    ///
    /// Panics on invalid input ([`IngestError`]) — stream owners that must
    /// survive a misbehaving source use [`MultiQueryEngine::try_advance`]
    /// or a lenient [`OrderPolicy`] instead.
    pub fn advance(&mut self, e: StreamEdge) -> Vec<(QueryId, MatchRecord)> {
        match self.try_advance(e) {
            Ok(out) => out,
            Err(err) => panic!("MultiQueryEngine::advance fed invalid input: {err}"),
        }
    }

    /// [`MultiQueryEngine::advance`] with the ingestion boundary surfaced:
    /// an invalid arrival becomes a typed [`IngestError`] with every
    /// window, snapshot and engine untouched; out-of-order arrivals follow
    /// the gate's [`OrderPolicy`]. Under [`FaultPolicy::Quarantine`] a
    /// panic inside one query's work quarantines that query (recorded in
    /// [`MultiQueryEngine::faults`]) and the remaining queries still
    /// process the arrival.
    pub fn try_advance(
        &mut self,
        e: StreamEdge,
    ) -> Result<Vec<(QueryId, MatchRecord)>, IngestError> {
        let Some(e) = self.gate.admit(e)? else {
            return Ok(Vec::new()); // dropped per OrderPolicy::DropSilently
        };
        let ev = self.window.advance(e);
        // Queries that panicked while handling THIS arrival: skipped for
        // the rest of the event, unregistered after it.
        let mut faulted: Vec<(QueryId, String)> = Vec::new();
        let out = match self.mode {
            DispatchMode::Signature => {
                for x in &ev.expired {
                    if let Some(targets) = self.dispatch.get(&x.signature()) {
                        for qid in targets {
                            if faulted.iter().any(|(f, _)| f == qid) {
                                continue;
                            }
                            let Some(reg) = self.queries.get_mut(qid) else {
                                debug_assert!(false, "dispatch targets a registered query");
                                continue;
                            };
                            let mut work = || {
                                fail_point!(sites::PRE_EXPIRY, qid.0);
                                reg.engine.expire_partials(x);
                            };
                            match self.fault_policy {
                                FaultPolicy::Propagate => work(),
                                FaultPolicy::Quarantine => {
                                    if let Err(p) = catch_unwind(AssertUnwindSafe(work)) {
                                        faulted.push((*qid, payload_str(&*p)));
                                    }
                                }
                            }
                        }
                    }
                    self.snapshot.remove(x.id);
                }
                self.edges_seen += 1;
                self.snapshot.insert(e);
                let mut out = Vec::new();
                if let Some(targets) = self.dispatch.get(&e.signature()) {
                    for qid in targets {
                        if faulted.iter().any(|(f, _)| f == qid) {
                            continue;
                        }
                        let Some(reg) = self.queries.get_mut(qid) else {
                            debug_assert!(false, "dispatch targets a registered query");
                            continue;
                        };
                        reg.routed += 1;
                        let snapshot = &self.snapshot;
                        let mut work = || {
                            fail_point!(sites::PRE_PROBE, qid.0);
                            let ms = match reg.engine.insert_at(e, snapshot) {
                                Ok(ms) => ms,
                                // The gate sanitized the stream, so an
                                // engine-level rejection is a bug in THIS
                                // query's plumbing: under Quarantine it
                                // condemns only the query.
                                Err(err) => panic!("sanitized stream rejected: {err}"),
                            };
                            fail_point!(sites::POST_RECORD, qid.0);
                            ms
                        };
                        match self.fault_policy {
                            FaultPolicy::Propagate => {
                                for m in work() {
                                    out.push((*qid, m));
                                }
                            }
                            FaultPolicy::Quarantine => match catch_unwind(AssertUnwindSafe(work)) {
                                Ok(ms) => {
                                    for m in ms {
                                        out.push((*qid, m));
                                    }
                                }
                                Err(p) => faulted.push((*qid, payload_str(&*p))),
                            },
                        }
                    }
                }
                out
            }
            DispatchMode::Broadcast => {
                self.edges_seen += 1;
                let mut out = Vec::new();
                for (qid, reg) in self.queries.iter_mut() {
                    reg.routed += 1;
                    let mut work = || {
                        fail_point!(sites::PRE_EXPIRY, qid.0);
                        for x in &ev.expired {
                            reg.engine.expire(x);
                        }
                        fail_point!(sites::PRE_PROBE, qid.0);
                        let ms = reg.engine.insert(e);
                        fail_point!(sites::POST_RECORD, qid.0);
                        ms
                    };
                    match self.fault_policy {
                        FaultPolicy::Propagate => {
                            for m in work() {
                                out.push((*qid, m));
                            }
                        }
                        FaultPolicy::Quarantine => match catch_unwind(AssertUnwindSafe(work)) {
                            Ok(ms) => {
                                for m in ms {
                                    out.push((*qid, m));
                                }
                            }
                            Err(p) => faulted.push((*qid, payload_str(&*p))),
                        },
                    }
                }
                out
            }
        };
        for (qid, payload) in faulted {
            let removed = self.unregister(qid);
            debug_assert!(removed, "faulted query was registered");
            self.faults.push(QueryFault { qid, payload, edge_seq: self.edges_seen });
        }
        Ok(out)
    }

    /// Batch form of [`MultiQueryEngine::advance`]: one gate pass, one
    /// shared-window advance and signature-grouped dispatch for a whole
    /// batch. Panics on invalid input like [`MultiQueryEngine::advance`].
    pub fn advance_batch(&mut self, batch: &[StreamEdge]) -> Vec<(QueryId, MatchRecord)> {
        match self.try_advance_batch(batch) {
            Ok(out) => out,
            Err(err) => panic!("MultiQueryEngine::advance_batch fed invalid input: {err}"),
        }
    }

    /// [`MultiQueryEngine::try_advance`] folded over a batch, amortized:
    /// the gate validates every arrival up front (stopping at the first
    /// rejection, whose error is returned after the admitted prefix is
    /// processed), the shared window advances once, and arrivals are
    /// dispatched as *runs* — maximal consecutive same-signature spans
    /// with no intervening expiry — so each reacting query receives a
    /// contiguous sub-batch through
    /// [`TimingEngine::insert_batch_at`] instead of one call per edge.
    ///
    /// Each query's own match stream is byte-identical to the per-edge
    /// fold; the *interleaving* across queries differs (grouped per run ×
    /// query instead of per edge × query). Quarantine semantics carry
    /// over: a panic anywhere in a query's sub-batch work condemns that
    /// query alone — it is skipped for the rest of the batch and
    /// unregistered at the end, and every other query still processes the
    /// full batch.
    pub fn try_advance_batch(
        &mut self,
        batch: &[StreamEdge],
    ) -> Result<Vec<(QueryId, MatchRecord)>, IngestError> {
        let mut admitted: Vec<StreamEdge> = Vec::with_capacity(batch.len());
        let mut failure: Option<IngestError> = None;
        for &e in batch {
            match self.gate.admit(e) {
                Ok(Some(e)) => admitted.push(e),
                Ok(None) => {}
                Err(err) => {
                    failure = Some(err);
                    break;
                }
            }
        }
        let ev = self.window.advance_batch(&admitted);
        let mut faulted: Vec<(QueryId, String)> = Vec::new();
        let mut out: Vec<(QueryId, MatchRecord)> = Vec::new();
        for step in &ev.steps {
            match self.mode {
                DispatchMode::Signature => {
                    for x in &step.expired {
                        if let Some(targets) = self.dispatch.get(&x.signature()) {
                            for qid in targets {
                                if faulted.iter().any(|(f, _)| f == qid) {
                                    continue;
                                }
                                let Some(reg) = self.queries.get_mut(qid) else {
                                    debug_assert!(false, "dispatch targets a registered query");
                                    continue;
                                };
                                let mut work = || {
                                    fail_point!(sites::PRE_EXPIRY, qid.0);
                                    reg.engine.expire_partials(x);
                                };
                                match self.fault_policy {
                                    FaultPolicy::Propagate => work(),
                                    FaultPolicy::Quarantine => {
                                        if let Err(p) = catch_unwind(AssertUnwindSafe(work)) {
                                            faulted.push((*qid, payload_str(&*p)));
                                        }
                                    }
                                }
                            }
                        }
                        self.snapshot.remove(x.id);
                    }
                    self.edges_seen += step.arrivals.len() as u64;
                    // The whole step enters the snapshot before dispatch:
                    // engines only resolve ids they have stored, so edges
                    // admitted ahead of their own processing are invisible
                    // until their run is delivered.
                    for &a in &step.arrivals {
                        self.snapshot.insert(a);
                    }
                    let mut s = 0usize;
                    while s < step.arrivals.len() {
                        let sig = step.arrivals[s].signature();
                        let mut t = s + 1;
                        while t < step.arrivals.len() && step.arrivals[t].signature() == sig {
                            t += 1;
                        }
                        let run = &step.arrivals[s..t];
                        s = t;
                        let Some(targets) = self.dispatch.get(&sig) else {
                            continue;
                        };
                        for qid in targets {
                            if faulted.iter().any(|(f, _)| f == qid) {
                                continue;
                            }
                            let Some(reg) = self.queries.get_mut(qid) else {
                                debug_assert!(false, "dispatch targets a registered query");
                                continue;
                            };
                            reg.routed += run.len() as u64;
                            let snapshot = &self.snapshot;
                            let mut work = || {
                                fail_point!(sites::PRE_PROBE, qid.0);
                                let ms = match reg.engine.insert_batch_at(run, snapshot) {
                                    Ok(ms) => ms,
                                    // The gate sanitized the stream: an
                                    // engine-level rejection is a bug in
                                    // THIS query's plumbing.
                                    Err(err) => panic!("sanitized stream rejected: {err}"),
                                };
                                fail_point!(sites::POST_RECORD, qid.0);
                                ms
                            };
                            match self.fault_policy {
                                FaultPolicy::Propagate => {
                                    for m in work() {
                                        out.push((*qid, m));
                                    }
                                }
                                FaultPolicy::Quarantine => {
                                    match catch_unwind(AssertUnwindSafe(work)) {
                                        Ok(ms) => {
                                            for m in ms {
                                                out.push((*qid, m));
                                            }
                                        }
                                        Err(p) => faulted.push((*qid, payload_str(&*p))),
                                    }
                                }
                            }
                        }
                    }
                }
                DispatchMode::Broadcast => {
                    self.edges_seen += step.arrivals.len() as u64;
                    for (qid, reg) in self.queries.iter_mut() {
                        if faulted.iter().any(|(f, _)| f == qid) {
                            continue;
                        }
                        reg.routed += step.arrivals.len() as u64;
                        let mut work = || {
                            fail_point!(sites::PRE_EXPIRY, qid.0);
                            for x in &step.expired {
                                reg.engine.expire(x);
                            }
                            fail_point!(sites::PRE_PROBE, qid.0);
                            let ms = match reg.engine.insert_batch(&step.arrivals) {
                                Ok(ms) => ms,
                                Err(err) => panic!("sanitized stream rejected: {err}"),
                            };
                            fail_point!(sites::POST_RECORD, qid.0);
                            ms
                        };
                        match self.fault_policy {
                            FaultPolicy::Propagate => {
                                for m in work() {
                                    out.push((*qid, m));
                                }
                            }
                            FaultPolicy::Quarantine => match catch_unwind(AssertUnwindSafe(work)) {
                                Ok(ms) => {
                                    for m in ms {
                                        out.push((*qid, m));
                                    }
                                }
                                Err(p) => faulted.push((*qid, payload_str(&*p))),
                            },
                        }
                    }
                }
            }
        }
        for (qid, payload) in faulted {
            let removed = self.unregister(qid);
            debug_assert!(removed, "faulted query was registered");
            self.faults.push(QueryFault { qid, payload, edge_seq: self.edges_seen });
        }
        match failure {
            Some(err) => Err(err),
            None => Ok(out),
        }
    }

    /// Per-query counters (normalized — see [`QueryStats::stats`]) plus
    /// the shared-snapshot bytes, counted once.
    pub fn stats(&self) -> MultiStats {
        let queries = self
            .queries
            .iter()
            .map(|(&id, reg)| {
                let mut stats = reg.engine.stats();
                // Arrivals since registration the dispatch index filtered
                // out: an independent engine would have processed and
                // discarded them (no candidate query edge, by
                // construction of the index).
                let since = self.edges_seen - reg.seen_base;
                let unrouted = since - reg.routed;
                stats.edges_processed += unrouted;
                stats.edges_discarded += unrouted;
                let store_bytes = match self.mode {
                    DispatchMode::Signature => reg.engine.store_space_bytes(),
                    DispatchMode::Broadcast => reg.engine.space_bytes(),
                };
                QueryStats { id, stats, store_bytes }
            })
            .collect();
        MultiStats {
            queries,
            snapshot_bytes: match self.mode {
                DispatchMode::Signature => self.snapshot.space_bytes(),
                DispatchMode::Broadcast => 0,
            },
            edges_seen: self.edges_seen,
            faults: self.faults.clone(),
            ingest: self.gate.stats(),
            shards: Vec::new(),
        }
    }

    /// Normalized counters of one query, if registered.
    pub fn stats_of(&self, id: QueryId) -> Option<EngineStats> {
        let reg = self.queries.get(&id)?;
        let mut stats = reg.engine.stats();
        let unrouted = (self.edges_seen - reg.seen_base) - reg.routed;
        stats.edges_processed += unrouted;
        stats.edges_discarded += unrouted;
        Some(stats)
    }

    /// Live complete matches of one query, if registered.
    pub fn live_match_count(&self, id: QueryId) -> Option<usize> {
        self.queries.get(&id).map(|r| r.engine.live_match_count())
    }

    /// Total bytes: shared snapshot once plus every query's store (see
    /// [`MultiStats::space_bytes`]).
    pub fn space_bytes(&self) -> usize {
        self.stats().space_bytes()
    }

    /// Edges currently inside the shared window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Runs the full [`tcs_core::store::StoreAudit`] sweep over every
    /// registered query's store (plus each engine's
    /// `live_partials == store_rows` cross-check), prefixing each
    /// violation's detail with the owning query id.
    pub fn audit(&self) -> Vec<tcs_core::store::AuditViolation> {
        let mut out = Vec::new();
        for (id, reg) in &self.queries {
            for mut v in reg.engine.audit() {
                v.detail = format!("query {}: {}", id.0, v.detail);
                out.push(v);
            }
        }
        out
    }

    /// Panics with every [`MultiQueryEngine::audit`] violation.
    pub fn assert_clean(&self) {
        let violations = self.audit();
        assert!(
            violations.is_empty(),
            "multi-query store audit failed:\n{}",
            tcs_core::store::format_violations(&violations)
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use tcs_core::PlanOptions;
    use tcs_graph::query::QueryEdge;
    use tcs_graph::{EdgeId, QueryGraph};

    /// 2-path query over the tenant's private label space
    /// `(3t, 3t+1, 3t+2)`, timed `ε0 ≺ ε1`.
    fn tenant_query(t: u16) -> QueryGraph {
        QueryGraph::new(
            vec![VLabel(3 * t), VLabel(3 * t + 1), VLabel(3 * t + 2)],
            vec![
                QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
                QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            ],
            &[(0, 1)],
        )
        .unwrap()
    }

    fn plan(t: u16) -> QueryPlan {
        QueryPlan::build(tenant_query(t), PlanOptions::timing())
    }

    /// Opening (a→b) and closing (b→c) edges of tenant `t`'s 2-chain.
    fn open_edge(id: u64, t: u16, ts: u64) -> StreamEdge {
        StreamEdge::new(id, 100 + id as u32, 3 * t, 200 + t as u32, 3 * t + 1, 0, ts)
    }
    fn close_edge(id: u64, t: u16, ts: u64) -> StreamEdge {
        StreamEdge::new(id, 200 + t as u32, 3 * t + 1, 300 + id as u32, 3 * t + 2, 0, ts)
    }

    #[test]
    fn dispatch_routes_only_matching_tenants() {
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = multi.register(plan(0));
        let q1 = multi.register(plan(1));
        assert_eq!(multi.n_queries(), 2);
        assert!(multi.advance(open_edge(1, 0, 1)).is_empty());
        let out = multi.advance(close_edge(2, 0, 2));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, q0);
        // Tenant 1 never saw either edge.
        let s1 = multi.stats_of(q1).unwrap();
        assert_eq!(s1.edges_processed, 2);
        assert_eq!(s1.edges_discarded, 2);
        assert_eq!(s1.matches_emitted, 0);
        // Tenant 0 processed both for real.
        let s0 = multi.stats_of(q0).unwrap();
        assert_eq!(s0.edges_processed, 2);
        assert_eq!(s0.matches_emitted, 1);
        assert_eq!(multi.live_match_count(q0), Some(1));
    }

    #[test]
    fn unregister_drops_state_and_dispatch_entries() {
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        let q0 = multi.register(plan(0));
        multi.advance(open_edge(1, 0, 1));
        multi.advance(close_edge(2, 0, 2));
        assert!(multi.wants(open_edge(9, 0, 9).signature()));
        assert!(multi.unregister(q0));
        assert!(!multi.unregister(q0), "double unregister reports unknown");
        assert!(!multi.wants(open_edge(9, 0, 9).signature()));
        assert_eq!(multi.n_queries(), 0);
        // The stream keeps flowing; nobody reacts.
        assert!(multi.advance(close_edge(3, 0, 3)).is_empty());
        assert_eq!(multi.stats().space_bytes(), multi.stats().snapshot_bytes);
    }

    #[test]
    fn late_registration_starts_fresh() {
        // A query registered between the opening and closing edge of its
        // pattern must NOT see the opening edge (no replay): no match.
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(100);
        multi.advance(open_edge(1, 0, 1));
        let q0 = multi.register(plan(0));
        assert!(multi.advance(close_edge(2, 0, 2)).is_empty());
        // A full pattern after registration does match.
        multi.advance(open_edge(3, 0, 3));
        let out = multi.advance(close_edge(4, 0, 4));
        assert_eq!(out, vec![(q0, MatchRecord::from(vec![EdgeId(3), EdgeId(4)]))]);
        // Stats count the pre-registration edge not at all, the
        // post-registration ones fully.
        let s = multi.stats_of(q0).unwrap();
        assert_eq!(s.edges_processed, 3);
    }

    #[test]
    fn expiry_is_routed_through_the_shared_window() {
        let mut multi: MultiQueryEngine = MultiQueryEngine::new(5);
        let q0 = multi.register(plan(0));
        multi.advance(open_edge(1, 0, 1));
        let out = multi.advance(close_edge(2, 0, 2));
        assert_eq!(out.len(), 1);
        assert_eq!(multi.live_match_count(q0), Some(1));
        // ts=10 expires both pattern edges: the match disappears and the
        // snapshot shrinks with the window.
        multi.advance(open_edge(3, 1, 10));
        assert_eq!(multi.live_match_count(q0), Some(0));
        assert_eq!(multi.window_len(), 1);
        let st = multi.stats();
        assert!(st.queries[0].stats.partials_deleted >= 2);
    }

    #[test]
    fn broadcast_mode_matches_signature_mode() {
        let mut sig: MultiQueryEngine = MultiQueryEngine::new(6);
        let mut bc: MultiQueryEngine = MultiQueryEngine::with_mode(6, DispatchMode::Broadcast);
        for t in 0..3u16 {
            sig.register(plan(t));
            bc.register(plan(t));
        }
        let mut id = 0u64;
        let mut ts = 0u64;
        for round in 0..40u64 {
            let t = (round % 3) as u16;
            id += 1;
            ts += 1;
            let e = if round % 2 == 0 { open_edge(id, t, ts) } else { close_edge(id, t, ts) };
            let a = sig.advance(e);
            let b = bc.advance(e);
            assert_eq!(a, b, "round {round}");
        }
        let (sa, sb) = (sig.stats(), bc.stats());
        assert_eq!(sa.queries.len(), sb.queries.len());
        for (qa, qb) in sa.queries.iter().zip(&sb.queries) {
            assert_eq!(qa.id, qb.id);
            assert_eq!(qa.stats, qb.stats, "normalized stats agree across modes");
        }
        // Broadcast pays for 3 private windows; signature mode holds the
        // snapshot once and only per-query stores on top.
        assert_eq!(sb.snapshot_bytes, 0);
        assert!(sa.snapshot_bytes > 0);
    }

    /// Batched dispatch must match the per-edge fold per query — same
    /// per-query match subsequences, same normalized stats — in both
    /// dispatch modes, with a registration landing between batches.
    #[test]
    fn advance_batch_matches_per_edge_fold() {
        for mode in [DispatchMode::Signature, DispatchMode::Broadcast] {
            let mut per: MultiQueryEngine = MultiQueryEngine::with_mode(12, mode);
            let mut bat: MultiQueryEngine = MultiQueryEngine::with_mode(12, mode);
            for t in 0..2u16 {
                per.register(plan(t));
                bat.register(plan(t));
            }
            let mut edges = Vec::new();
            let mut id = 0u64;
            for round in 0..60u64 {
                let t = (round % 2) as u16;
                id += 1;
                // Consecutive same-signature arrivals (runs) and window
                // expiries both occur on this stream.
                let e = if round % 4 < 2 {
                    open_edge(id, t, round + 1)
                } else {
                    close_edge(id, t, round + 1)
                };
                edges.push(e);
            }
            let mut out_per: Vec<(QueryId, MatchRecord)> = Vec::new();
            let mut out_bat: Vec<(QueryId, MatchRecord)> = Vec::new();
            for (bi, chunk) in edges.chunks(7).enumerate() {
                if bi == 3 {
                    // A registration between batches must behave like one
                    // at the same stream position of the per-edge fold.
                    per.register(plan(2));
                    bat.register(plan(2));
                }
                for &e in chunk {
                    out_per.extend(per.advance(e));
                }
                out_bat.extend(bat.advance_batch(chunk));
            }
            // Per-query subsequences are byte-identical (cross-query
            // interleaving legitimately differs: run × query grouping).
            for qid in per.query_ids() {
                let a: Vec<&MatchRecord> =
                    out_per.iter().filter(|(q, _)| *q == qid).map(|(_, m)| m).collect();
                let b: Vec<&MatchRecord> =
                    out_bat.iter().filter(|(q, _)| *q == qid).map(|(_, m)| m).collect();
                assert_eq!(a, b, "query {qid:?} mode {mode:?}");
                assert_eq!(per.stats_of(qid), bat.stats_of(qid), "stats {qid:?} {mode:?}");
            }
            assert!(!out_per.is_empty());
            assert_eq!(per.ingest_stats(), bat.ingest_stats());
            per.assert_clean();
            bat.assert_clean();
        }
    }

    /// The PerEdge ablation of the batched path is equivalent too, and
    /// switching it on mid-stream (between batches) is safe.
    #[test]
    fn advance_batch_per_edge_mode_equivalent() {
        let mut srt: MultiQueryEngine = MultiQueryEngine::new(20);
        let mut per: MultiQueryEngine = MultiQueryEngine::new(20);
        per.set_batch_mode(BatchMode::PerEdge);
        assert_eq!(per.batch_mode(), BatchMode::PerEdge);
        srt.register(plan(0));
        per.register(plan(0));
        let mut id = 0;
        let mut edges = Vec::new();
        for round in 0..30u64 {
            id += 1;
            let e = if round % 3 == 0 {
                open_edge(id, 0, round + 1)
            } else {
                close_edge(id, 0, round + 1)
            };
            edges.push(e);
        }
        for chunk in edges.chunks(5) {
            let a = srt.advance_batch(chunk);
            let b = per.advance_batch(chunk);
            assert_eq!(a, b);
        }
        let (sa, sb) = (srt.stats(), per.stats());
        assert_eq!(sa.queries[0].stats, sb.queries[0].stats);
    }
}
