//! The canonical match record (Definition 4) shared by every engine.
//!
//! A time-constrained match assigns one data edge to every query edge. The
//! vertex bijection `F` of Definition 4 is implied: it is derived from the
//! edge assignment and validated by [`MatchRecord::verify`]. Storing only the
//! edge assignment keeps records compact and makes results from different
//! engines directly comparable in tests.

use crate::edge::StreamEdge;
use crate::ids::{EdgeId, VertexId};
use crate::query::QueryGraph;
use std::collections::HashMap;

/// An assignment of data edges to query edges; index `i` holds the data edge
/// matched to query edge `i`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatchRecord {
    edges: Box<[EdgeId]>,
}

/// Why a candidate record failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchViolation {
    /// Record length differs from the query's edge count.
    ArityMismatch,
    /// A referenced data edge is not live (not supplied to `verify`).
    MissingEdge(EdgeId),
    /// Two query edges mapped to the same data edge.
    DuplicateEdge(EdgeId),
    /// A vertex or edge label mismatch on a query edge.
    LabelMismatch(usize),
    /// Two distinct query vertices mapped to the same data vertex, or one
    /// query vertex mapped to two data vertices.
    NotInjective,
    /// A timing constraint `i ≺ j` violated by the assigned timestamps.
    TimingViolated { before: usize, after: usize },
}

impl MatchRecord {
    /// Builds a record from edges listed in query-edge order.
    pub fn new(edges: Box<[EdgeId]>) -> Self {
        MatchRecord { edges }
    }

    /// The data edge matched to query edge `i`.
    #[inline]
    pub fn edge(&self, i: usize) -> EdgeId {
        self.edges[i]
    }

    /// All assigned data edges in query-edge order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of query edges covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the (invalid in practice) empty record.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether this match uses the given data edge.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Fully re-checks Definition 4 against the query and a resolver from
    /// edge id to live edge. Engines use this in debug assertions and the
    /// test oracle uses it as ground truth.
    pub fn verify<'a, F>(&self, q: &QueryGraph, resolve: F) -> Result<(), MatchViolation>
    where
        F: Fn(EdgeId) -> Option<&'a StreamEdge>,
    {
        if self.edges.len() != q.n_edges() {
            return Err(MatchViolation::ArityMismatch);
        }
        let mut seen = HashMap::with_capacity(self.edges.len());
        let mut resolved = Vec::with_capacity(self.edges.len());
        for &id in self.edges.iter() {
            if seen.insert(id, ()).is_some() {
                return Err(MatchViolation::DuplicateEdge(id));
            }
            let e = resolve(id).ok_or(MatchViolation::MissingEdge(id))?;
            resolved.push(*e);
        }
        // Derive the vertex mapping; demand consistency and injectivity.
        let mut fwd: HashMap<usize, VertexId> = HashMap::new();
        let mut bwd: HashMap<VertexId, usize> = HashMap::new();
        let mut bind = |qv: usize, dv: VertexId| -> bool {
            match fwd.get(&qv) {
                Some(&prev) if prev != dv => false,
                Some(_) => true,
                None => match bwd.get(&dv) {
                    Some(&prev_q) if prev_q != qv => false,
                    _ => {
                        fwd.insert(qv, dv);
                        bwd.insert(dv, qv);
                        true
                    }
                },
            }
        };
        for (i, (qe, de)) in q.edges.iter().zip(resolved.iter()).enumerate() {
            if q.vertex_labels[qe.src] != de.src_label
                || q.vertex_labels[qe.dst] != de.dst_label
                || qe.label != de.label
            {
                return Err(MatchViolation::LabelMismatch(i));
            }
            if !bind(qe.src, de.src) || !bind(qe.dst, de.dst) {
                return Err(MatchViolation::NotInjective);
            }
        }
        // Timing order over assigned timestamps.
        for j in 0..q.n_edges() {
            let mut preds = q.order.before_mask(j);
            while preds != 0 {
                let i = preds.trailing_zeros() as usize;
                preds &= preds - 1;
                if resolved[i].ts >= resolved[j].ts {
                    return Err(MatchViolation::TimingViolated { before: i, after: j });
                }
            }
        }
        Ok(())
    }
}

impl From<Vec<EdgeId>> for MatchRecord {
    fn from(v: Vec<EdgeId>) -> Self {
        MatchRecord::new(v.into_boxed_slice())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;
    use crate::ids::{ELabel, VLabel};
    use crate::query::QueryEdge;

    /// Two-edge path query a→b→c with ε0 ≺ ε1.
    fn q() -> QueryGraph {
        QueryGraph::new(
            vec![VLabel(0), VLabel(1), VLabel(2)],
            vec![
                QueryEdge { src: 0, dst: 1, label: ELabel(9) },
                QueryEdge { src: 1, dst: 2, label: ELabel(9) },
            ],
            &[(0, 1)],
        )
        .unwrap()
    }

    fn resolver(edges: Vec<StreamEdge>) -> impl Fn(EdgeId) -> Option<&'static StreamEdge> {
        let leaked: &'static [StreamEdge] = Box::leak(edges.into_boxed_slice());
        move |id| leaked.iter().find(|e| e.id == id)
    }

    #[test]
    fn valid_match_verifies() {
        let es =
            vec![StreamEdge::new(1, 10, 0, 11, 1, 9, 1), StreamEdge::new(2, 11, 1, 12, 2, 9, 2)];
        let m = MatchRecord::from(vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(m.verify(&q(), resolver(es)), Ok(()));
    }

    #[test]
    fn timing_violation_detected() {
        let es =
            vec![StreamEdge::new(1, 10, 0, 11, 1, 9, 5), StreamEdge::new(2, 11, 1, 12, 2, 9, 2)];
        let m = MatchRecord::from(vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(
            m.verify(&q(), resolver(es)),
            Err(MatchViolation::TimingViolated { before: 0, after: 1 })
        );
    }

    #[test]
    fn injectivity_violation_detected() {
        // b and c both map to vertex 11 via a second edge 11→11? Use a
        // cleaner case: ε1 maps b→c onto 11→10, colliding c with a's vertex.
        let es =
            vec![StreamEdge::new(1, 10, 0, 11, 1, 9, 1), StreamEdge::new(2, 11, 1, 10, 2, 9, 2)];
        let m = MatchRecord::from(vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(m.verify(&q(), resolver(es)), Err(MatchViolation::NotInjective));
    }

    #[test]
    fn label_mismatch_detected() {
        let es = vec![
            StreamEdge::new(1, 10, 0, 11, 1, 8, 1), // wrong edge label
            StreamEdge::new(2, 11, 1, 12, 2, 9, 2),
        ];
        let m = MatchRecord::from(vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(m.verify(&q(), resolver(es)), Err(MatchViolation::LabelMismatch(0)));
    }

    #[test]
    fn duplicate_and_missing_edges_detected() {
        let es = vec![StreamEdge::new(1, 10, 0, 11, 1, 9, 1)];
        let dup = MatchRecord::from(vec![EdgeId(1), EdgeId(1)]);
        assert_eq!(
            dup.verify(&q(), resolver(es.clone())),
            Err(MatchViolation::DuplicateEdge(EdgeId(1)))
        );
        let missing = MatchRecord::from(vec![EdgeId(1), EdgeId(42)]);
        assert_eq!(
            missing.verify(&q(), resolver(es)),
            Err(MatchViolation::MissingEdge(EdgeId(42)))
        );
    }

    #[test]
    fn arity_mismatch_detected() {
        let m = MatchRecord::from(vec![EdgeId(1)]);
        assert_eq!(m.verify(&q(), |_| None), Err(MatchViolation::ArityMismatch));
    }

    #[test]
    fn vertex_consistency_enforced() {
        // ε0 maps b→11 but ε1 maps b→13: inconsistent F.
        let es =
            vec![StreamEdge::new(1, 10, 0, 11, 1, 9, 1), StreamEdge::new(2, 13, 1, 12, 2, 9, 2)];
        let m = MatchRecord::from(vec![EdgeId(1), EdgeId(2)]);
        assert_eq!(m.verify(&q(), resolver(es)), Err(MatchViolation::NotInjective));
    }
}
