//! The current-window snapshot graph `G_t` (Definition 2).
//!
//! Engines that recompute matches from the graph structure (the IncMat
//! baseline family and the test oracle) need random access to the live
//! edges: adjacency lists per vertex, an edge-signature index for candidate
//! retrieval, and k-hop neighbourhood extraction for affected-area
//! computation. The paper's own method deliberately does *not* keep this
//! structure (§VII-C2 credits part of its space advantage to that), which is
//! why the snapshot lives in the substrate crate and is only wired into the
//! baselines — and, since the multi-query subsystem, into `tcs-multi`, where
//! ONE snapshot is shared by every registered query as their common
//! [`LiveEdgeView`] so N queries no longer cost N copies of the window.

use crate::edge::StreamEdge;
use crate::ids::{ELabel, EdgeId, VLabel, VertexId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Read access to the live edges of the current window, independent of who
/// owns them.
///
/// The serial engine historically kept its own `EdgeId → StreamEdge` map;
/// the multi-query subsystem instead maintains **one** shared window per
/// engine group and hands every registered query a view of it. Anything
/// that can resolve a live edge id qualifies: the plain map (private
/// engines), a [`Snapshot`] (the shared multi-query window, which also
/// carries the signature index), or a shard-local table.
///
/// Implementations must return `Some` for every edge currently inside the
/// window and `None` only for edges that already expired — consumers store
/// ids obtained from live arrivals and resolve them during joins, so a
/// `None` for a stored id is a window-maintenance bug on the owner's side.
pub trait LiveEdgeView {
    /// Resolves a live edge by id.
    fn live_edge(&self, id: EdgeId) -> Option<&StreamEdge>;
}

impl LiveEdgeView for HashMap<EdgeId, StreamEdge> {
    #[inline]
    fn live_edge(&self, id: EdgeId) -> Option<&StreamEdge> {
        self.get(&id)
    }
}

impl LiveEdgeView for Snapshot {
    #[inline]
    fn live_edge(&self, id: EdgeId) -> Option<&StreamEdge> {
        self.edge(id)
    }
}

/// Direction of an incident edge relative to the indexed vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// The vertex is the edge's source.
    Out,
    /// The vertex is the edge's destination.
    In,
}

/// Where one edge sits inside the adjacency and signature lists, so
/// removal is an O(1) swap-remove instead of an O(degree)/O(bucket)
/// `Vec::retain` (hub vertices made the latter quadratic under expiry).
#[derive(Clone, Copy, Debug, Default)]
struct EdgePos {
    /// Index in `adj[src]`.
    src_pos: u32,
    /// Index in `adj[dst]` (unused for self-loops, which are indexed once).
    dst_pos: u32,
    /// Index in `by_signature[signature]`.
    sig_pos: u32,
}

/// A mutable snapshot of the live window contents with adjacency and
/// label indexes.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    edges: HashMap<EdgeId, StreamEdge>,
    /// vertex → incident edge ids (both directions).
    adj: HashMap<VertexId, Vec<(EdgeId, Dir)>>,
    /// (src label, dst label, edge label) → live edge ids.
    by_signature: HashMap<(VLabel, VLabel, ELabel), Vec<EdgeId>>,
    /// Per-edge list positions maintained across swap-removes.
    pos: HashMap<EdgeId, EdgePos>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Number of live edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices with at least one live incident edge.
    pub fn n_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Inserts a live edge.
    ///
    /// # Panics
    /// Panics if the edge id is already present (stream ids are unique).
    pub fn insert(&mut self, e: StreamEdge) {
        let prev = self.edges.insert(e.id, e);
        assert!(prev.is_none(), "duplicate edge id {:?}", e.id);
        let src_list = self.adj.entry(e.src).or_default();
        let src_pos = src_list.len() as u32;
        src_list.push((e.id, Dir::Out));
        let dst_pos = if e.dst != e.src {
            let dst_list = self.adj.entry(e.dst).or_default();
            let p = dst_list.len() as u32;
            dst_list.push((e.id, Dir::In));
            p
        } else {
            0
        };
        let sig_list = self.by_signature.entry(e.signature()).or_default();
        let sig_pos = sig_list.len() as u32;
        sig_list.push(e.id);
        self.pos.insert(e.id, EdgePos { src_pos, dst_pos, sig_pos });
    }

    /// Swap-removes position `p` of vertex `v`'s adjacency list, patching
    /// the moved entry's stored position.
    fn remove_adj_at(&mut self, v: VertexId, p: u32) {
        let Some(list) = self.adj.get_mut(&v) else {
            debug_assert!(false, "indexed vertex has a list");
            return;
        };
        list.swap_remove(p as usize);
        if let Some(&(moved, dir)) = list.get(p as usize) {
            let Some(mp) = self.pos.get_mut(&moved) else {
                debug_assert!(false, "live edge has positions");
                return;
            };
            match dir {
                Dir::Out => mp.src_pos = p,
                Dir::In => mp.dst_pos = p,
            }
        }
        if list.is_empty() {
            self.adj.remove(&v);
        }
    }

    /// Removes an expired edge in O(1) per index; no-op if absent.
    pub fn remove(&mut self, id: EdgeId) {
        let Some(e) = self.edges.remove(&id) else {
            return;
        };
        let Some(pos) = self.pos.remove(&id) else {
            debug_assert!(false, "live edge has positions");
            return;
        };
        self.remove_adj_at(e.src, pos.src_pos);
        if e.dst != e.src {
            self.remove_adj_at(e.dst, pos.dst_pos);
        }
        let sig = e.signature();
        let Some(list) = self.by_signature.get_mut(&sig) else {
            debug_assert!(false, "indexed signature has a list");
            return;
        };
        list.swap_remove(pos.sig_pos as usize);
        if let Some(&moved) = list.get(pos.sig_pos as usize) {
            if let Some(mp) = self.pos.get_mut(&moved) {
                mp.sig_pos = pos.sig_pos;
            } else {
                debug_assert!(false, "live edge has positions");
            }
        }
        if list.is_empty() {
            self.by_signature.remove(&sig);
        }
    }

    /// Looks up a live edge.
    pub fn edge(&self, id: EdgeId) -> Option<&StreamEdge> {
        self.edges.get(&id)
    }

    /// All live edges (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = &StreamEdge> {
        self.edges.values()
    }

    /// Incident edges of a vertex (both directions).
    pub fn incident(&self, v: VertexId) -> &[(EdgeId, Dir)] {
        self.adj.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Live edges with the given label signature.
    pub fn with_signature(&self, sig: (VLabel, VLabel, ELabel)) -> &[EdgeId] {
        self.by_signature.get(&sig).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The set of edge ids within `hops` undirected hops of `seeds`
    /// (inclusive of edges between reached vertices) — the *affected area*
    /// `∆(G_i)` of an update per Fan et al., used by the IncMat baseline.
    pub fn k_hop_edges(&self, seeds: &[VertexId], hops: usize) -> HashSet<EdgeId> {
        let mut dist: HashMap<VertexId, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        for &s in seeds {
            dist.insert(s, 0);
            queue.push_back(s);
        }
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if d == hops {
                continue;
            }
            for &(eid, _) in self.incident(u) {
                let e = self.edges[&eid];
                let other = if e.src == u { e.dst } else { e.src };
                if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(other) {
                    slot.insert(d + 1);
                    queue.push_back(other);
                }
            }
        }
        let mut out = HashSet::new();
        for (&v, _) in dist.iter() {
            for &(eid, _) in self.incident(v) {
                let e = self.edges[&eid];
                if dist.contains_key(&e.src) && dist.contains_key(&e.dst) {
                    out.insert(eid);
                }
            }
        }
        out
    }

    /// Rough byte accounting of the structure (used in the space
    /// experiments; IncMat-style baselines pay for this, the paper's method
    /// does not).
    pub fn space_bytes(&self) -> usize {
        use std::mem::size_of;
        let edge_bytes = self.edges.len() * (size_of::<EdgeId>() + size_of::<StreamEdge>());
        let adj_bytes: usize = self
            .adj
            .values()
            .map(|v| size_of::<VertexId>() + v.capacity() * size_of::<(EdgeId, Dir)>())
            .sum();
        let sig_bytes: usize = self
            .by_signature
            .values()
            .map(|v| size_of::<(VLabel, VLabel, ELabel)>() + v.capacity() * size_of::<EdgeId>())
            .sum();
        let pos_bytes = self.pos.len() * (size_of::<EdgeId>() + size_of::<EdgePos>());
        edge_bytes + adj_bytes + sig_bytes + pos_bytes
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    fn edge(id: u64, src: u32, dst: u32, ts: u64) -> StreamEdge {
        StreamEdge::new(id, src, 1, dst, 2, 3, ts)
    }

    #[test]
    fn insert_and_remove_maintain_indexes() {
        let mut s = Snapshot::new();
        s.insert(edge(1, 10, 20, 1));
        s.insert(edge(2, 10, 30, 2));
        assert_eq!(s.n_edges(), 2);
        assert_eq!(s.n_vertices(), 3);
        assert_eq!(s.incident(VertexId(10)).len(), 2);
        assert_eq!(s.with_signature((VLabel(1), VLabel(2), ELabel(3))).len(), 2);

        s.remove(EdgeId(1));
        assert_eq!(s.n_edges(), 1);
        assert_eq!(s.n_vertices(), 2, "vertex 20 dropped with its last edge");
        assert_eq!(s.incident(VertexId(20)).len(), 0);
        assert_eq!(s.with_signature((VLabel(1), VLabel(2), ELabel(3))).len(), 1);

        s.remove(EdgeId(99)); // absent: no-op
        assert_eq!(s.n_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge id")]
    fn duplicate_id_panics() {
        let mut s = Snapshot::new();
        s.insert(edge(1, 0, 1, 1));
        s.insert(edge(1, 2, 3, 2));
    }

    #[test]
    fn self_loop_indexed_once() {
        let mut s = Snapshot::new();
        s.insert(StreamEdge::new(7, 5, 0, 5, 0, 0, 1));
        assert_eq!(s.incident(VertexId(5)).len(), 1);
        s.remove(EdgeId(7));
        assert_eq!(s.n_vertices(), 0);
    }

    #[test]
    fn k_hop_edges_bounds_area() {
        // Path 1 -2- 3 -4- 5 plus far-away edge 100-101.
        let mut s = Snapshot::new();
        s.insert(edge(1, 1, 2, 1));
        s.insert(edge(2, 2, 3, 2));
        s.insert(edge(3, 3, 4, 3));
        s.insert(edge(4, 4, 5, 4));
        s.insert(edge(5, 100, 101, 5));
        let area = s.k_hop_edges(&[VertexId(1)], 1);
        // vertices within 1 hop of 1: {1, 2}; induced edges: just edge 1.
        assert_eq!(area, HashSet::from([EdgeId(1)]));
        let area2 = s.k_hop_edges(&[VertexId(1)], 2);
        assert_eq!(area2, HashSet::from([EdgeId(1), EdgeId(2)]));
        let all = s.k_hop_edges(&[VertexId(1)], 10);
        assert_eq!(all.len(), 4, "far component never reached");
    }

    #[test]
    fn swap_remove_positions_survive_heavy_churn() {
        // Hub vertex 0 with many incident edges removed in adversarial
        // (middle-first) order: every removal swap-removes and must patch
        // the moved entry's stored position, or later removals corrupt
        // the lists.
        let mut s = Snapshot::new();
        let n = 200u64;
        for i in 0..n {
            s.insert(edge(i, 0, 1 + i as u32, i));
        }
        assert_eq!(s.incident(VertexId(0)).len(), n as usize);
        // Remove odds, then the rest in reverse, interleaving re-inserts.
        for i in (1..n).step_by(2) {
            s.remove(EdgeId(i));
        }
        let evens: Vec<u64> = (0..n).step_by(2).collect();
        for &i in evens.iter().rev() {
            s.remove(EdgeId(i));
            s.insert(edge(1000 + i, 0, 1 + i as u32, 1000 + i));
        }
        assert_eq!(s.incident(VertexId(0)).len(), (n / 2) as usize);
        // Every surviving edge is still reachable through both indexes.
        for i in (0..n).step_by(2) {
            let id = EdgeId(1000 + i);
            let e = *s.edge(id).expect("reinserted edge is live");
            assert!(s.incident(e.src).iter().any(|&(x, _)| x == id));
            assert!(s.incident(e.dst).iter().any(|&(x, _)| x == id));
            assert!(s.with_signature(e.signature()).contains(&id));
            s.remove(id);
        }
        assert_eq!(s.n_edges(), 0);
        assert_eq!(s.n_vertices(), 0);
    }

    #[test]
    fn space_is_nonzero_and_monotone() {
        let mut s = Snapshot::new();
        let empty = s.space_bytes();
        s.insert(edge(1, 1, 2, 1));
        assert!(s.space_bytes() > empty);
    }
}
