//! SNAP wiki-talk-like synthetic communication stream.
//!
//! The real dataset records "user A edited user B's talk page at time t";
//! the paper labels each vertex with the first character of the user name
//! and leaves edges unlabelled. This generator reproduces: ~26 vertex labels
//! with an English-first-letter frequency skew, power-law user activity, and
//! no edge labels.

use super::zipf::Zipf;
use crate::edge::StreamEdge;
use crate::ids::{ELabel, EdgeId, Timestamp, VLabel, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Approximate first-letter frequencies of English names, per mille.
/// (Coarse buckets are fine: only the *skew* matters for selectivity.)
const LETTER_WEIGHTS: [u32; 26] = [
    89, 45, 52, 49, 28, 25, 33, 41, 19, 61, 44, 38, 79, 26, 17, 42, 4, 48, 86, 54, 11, 13, 31, 2,
    14, 9,
];

/// Configuration for the wiki-talk generator.
#[derive(Clone, Debug)]
pub struct WikiTalkGen {
    /// Number of distinct users.
    pub n_users: usize,
    /// Zipf exponent of user activity (talk-page edits follow a power law).
    pub user_skew: f64,
}

impl Default for WikiTalkGen {
    fn default() -> Self {
        WikiTalkGen { n_users: 200_000, user_skew: 1.0 }
    }
}

impl WikiTalkGen {
    /// Generates `n_edges` talk-page edit events.
    pub fn generate(&self, n_edges: usize, seed: u64) -> Vec<StreamEdge> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7769_6b69_7461_6c6b);
        let users = Zipf::new(self.n_users, self.user_skew);
        // Assign every user a first-letter label once, weighted by
        // LETTER_WEIGHTS.
        let total: u32 = LETTER_WEIGHTS.iter().sum();
        let labels: Vec<VLabel> = (0..self.n_users)
            .map(|_| {
                let mut x = rng.gen_range(0..total);
                for (i, &w) in LETTER_WEIGHTS.iter().enumerate() {
                    if x < w {
                        return VLabel(i as u16);
                    }
                    x -= w;
                }
                VLabel(25)
            })
            .collect();
        let mut out = Vec::with_capacity(n_edges);
        for i in 0..n_edges {
            let src = users.sample(&mut rng) as u32;
            let mut dst = users.sample(&mut rng) as u32;
            while dst == src {
                dst = rng.gen_range(0..self.n_users as u32);
            }
            out.push(StreamEdge {
                id: EdgeId(i as u64),
                src: VertexId(src),
                dst: VertexId(dst),
                src_label: labels[src as usize],
                dst_label: labels[dst as usize],
                label: ELabel::NONE,
                ts: Timestamp(i as u64 + 1),
            });
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn labels_are_letters_and_stable_per_user() {
        let es = WikiTalkGen::default().generate(10_000, 5);
        let mut seen: HashMap<u32, VLabel> = HashMap::new();
        for e in &es {
            assert!(e.src_label.0 < 26 && e.dst_label.0 < 26);
            assert_eq!(e.label, ELabel::NONE);
            for (v, l) in [(e.src.0, e.src_label), (e.dst.0, e.dst_label)] {
                if let Some(prev) = seen.insert(v, l) {
                    assert_eq!(prev, l, "user {v} changed label");
                }
            }
        }
        super::super::check_stream_invariants(&es);
    }

    #[test]
    fn label_distribution_is_skewed() {
        let es = WikiTalkGen::default().generate(20_000, 6);
        let mut counts = [0usize; 26];
        for e in &es {
            counts[e.src_label.0 as usize] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min_nonzero = counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(*max > min_nonzero * 3);
    }

    #[test]
    fn activity_is_power_law_like() {
        let es = WikiTalkGen::default().generate(20_000, 7);
        let mut deg: HashMap<u32, usize> = HashMap::new();
        for e in &es {
            *deg.entry(e.src.0).or_default() += 1;
        }
        let mut d: Vec<usize> = deg.values().copied().collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        assert!(d[0] > 20, "hottest user is very active (got {})", d[0]);
    }
}
