//! LSBench-like synthetic streaming social data.
//!
//! The Linked Stream Benchmark emits five-tuples ⟨subject type/id, predicate,
//! object type/id⟩ across GPS, Post and Photo streams. The paper builds a
//! streaming graph whose vertex labels are the subject/object *types* and
//! whose edge labels are the *predicates*.
//!
//! This generator reproduces that shape with a fixed schema: typed vertices,
//! a predicate alphabet constrained by (subject type, object type) pairs, a
//! Zipf-skewed predicate mix, and preferential attachment inside each type
//! pool (active users post/like/follow more).

use super::zipf::Zipf;
use crate::edge::StreamEdge;
use crate::ids::{ELabel, EdgeId, Timestamp, VLabel, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Vertex types of the schema.
pub mod types {
    use crate::ids::VLabel;
    pub const USER: VLabel = VLabel(0);
    pub const POST: VLabel = VLabel(1);
    pub const PHOTO: VLabel = VLabel(2);
    pub const GPS: VLabel = VLabel(3);
    pub const COMMENT: VLabel = VLabel(4);
    pub const CHANNEL: VLabel = VLabel(5);
    /// Number of distinct vertex types.
    pub const COUNT: usize = 6;
}

/// Predicates of the schema: (edge label, subject type, object type).
pub const SCHEMA: &[(u16, VLabel, VLabel)] = &[
    (0, types::USER, types::USER),     // follows
    (1, types::USER, types::POST),     // creates
    (2, types::USER, types::POST),     // likes
    (3, types::USER, types::PHOTO),    // uploads
    (4, types::USER, types::GPS),      // locatedAt
    (5, types::USER, types::COMMENT),  // writes
    (6, types::COMMENT, types::POST),  // replyOf
    (7, types::POST, types::CHANNEL),  // postedIn
    (8, types::PHOTO, types::POST),    // attachedTo
    (9, types::USER, types::CHANNEL),  // subscribes
    (10, types::POST, types::USER),    // mentions
    (11, types::COMMENT, types::USER), // mentions (comment)
];

/// Configuration for the social-stream generator.
#[derive(Clone, Debug)]
pub struct SocialStreamGen {
    /// Size of the user pool (other pools grow with the stream).
    pub n_users: usize,
    /// Zipf exponent of the predicate mix.
    pub predicate_skew: f64,
    /// Probability that a non-user endpoint is a *fresh* entity rather than
    /// a recently created one (content keeps being produced).
    pub fresh_entity_prob: f64,
    /// Zipf exponent of user activity.
    pub user_skew: f64,
}

impl Default for SocialStreamGen {
    fn default() -> Self {
        SocialStreamGen {
            n_users: 100_000,
            predicate_skew: 0.9,
            fresh_entity_prob: 0.5,
            user_skew: 0.9,
        }
    }
}

impl SocialStreamGen {
    /// Generates `n_edges` typed social events.
    pub fn generate(&self, n_edges: usize, seed: u64) -> Vec<StreamEdge> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x736f_6369_616c_2121);
        let predicates = Zipf::new(SCHEMA.len(), self.predicate_skew);
        let users = Zipf::new(self.n_users, self.user_skew);
        // Per-type entity pools. Users are pre-populated; content types grow.
        // Vertex ids are globally unique: type t gets ids ≡ t (mod COUNT).
        let mut pool_sizes = [0usize; types::COUNT];
        pool_sizes[types::USER.0 as usize] = self.n_users;
        let entity_zipf = Zipf::new(16_384, 0.6); // recency-skew for content reuse

        let mut pick = |t: VLabel, rng: &mut SmallRng, fresh_p: f64| -> VertexId {
            let ti = t.0 as usize;
            let fresh = pool_sizes[ti] == 0 || rng.gen::<f64>() < fresh_p;
            let rank = if t == types::USER {
                users.sample(rng)
            } else if fresh {
                let r = pool_sizes[ti];
                pool_sizes[ti] += 1;
                r
            } else {
                // Prefer recently created entities (higher rank index).
                let n = pool_sizes[ti];
                let back = entity_zipf.sample(rng).min(n - 1);
                n - 1 - back
            };
            VertexId((rank * types::COUNT + ti) as u32)
        };

        let mut out = Vec::with_capacity(n_edges);
        for i in 0..n_edges {
            let (label, st, ot) = SCHEMA[predicates.sample(&mut rng)];
            let src = pick(st, &mut rng, self.fresh_entity_prob);
            let mut dst = pick(ot, &mut rng, self.fresh_entity_prob);
            while dst == src {
                dst = pick(ot, &mut rng, 1.0);
            }
            out.push(StreamEdge {
                id: EdgeId(i as u64),
                src,
                dst,
                src_label: st,
                dst_label: ot,
                label: ELabel(label),
                ts: Timestamp(i as u64 + 1),
            });
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn every_edge_conforms_to_schema() {
        let es = SocialStreamGen::default().generate(5_000, 9);
        for e in &es {
            let ok = SCHEMA
                .iter()
                .any(|&(l, s, o)| l == e.label.0 && s == e.src_label && o == e.dst_label);
            assert!(ok, "edge {e:?} violates the schema");
            assert_ne!(e.src, e.dst);
            // Id partitioning: type encoded in id mod COUNT.
            assert_eq!(e.src.0 as usize % types::COUNT, e.src_label.0 as usize);
            assert_eq!(e.dst.0 as usize % types::COUNT, e.dst_label.0 as usize);
        }
        super::super::check_stream_invariants(&es);
    }

    #[test]
    fn predicate_mix_is_skewed() {
        let es = SocialStreamGen::default().generate(20_000, 10);
        let mut counts: HashMap<u16, usize> = HashMap::new();
        for e in &es {
            *counts.entry(e.label.0).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap();
        let min = counts.values().min().copied().unwrap();
        assert!(max > 3 * min, "expected a skewed predicate mix");
    }

    #[test]
    fn content_pools_grow() {
        let es = SocialStreamGen::default().generate(20_000, 11);
        let posts: std::collections::HashSet<u32> = es
            .iter()
            .flat_map(|e| [(e.src, e.src_label), (e.dst, e.dst_label)])
            .filter(|&(_, l)| l == types::POST)
            .map(|(v, _)| v.0)
            .collect();
        assert!(posts.len() > 100, "post pool grew to {}", posts.len());
    }
}
