//! Synthetic dataset generators and the query-set generator of §VII.
//!
//! The paper evaluates on three datasets we cannot redistribute or download
//! here (CAIDA 2015 traces, the LSBench social stream, SNAP wiki-talk).
//! Each generator below reproduces the *statistical knobs that drive the
//! experiments* — label-alphabet size and skew, degree skew, vertex typing —
//! rather than the raw data; DESIGN.md §3 records the substitutions.
//!
//! All generators emit strictly increasing timestamps with a mean
//! inter-arrival gap of exactly one time unit, so a window of duration `w`
//! holds `≈ w` edges — matching the paper's window-size unit ("the ratio of
//! the total time span to the total number of edges").

pub mod case_study;
pub mod network_flow;
pub mod query_gen;
pub mod social_stream;
pub mod wiki_talk;
pub mod zipf;

pub use network_flow::NetworkFlowGen;
pub use query_gen::{QueryGen, TimingMode};
pub use social_stream::SocialStreamGen;
pub use wiki_talk::WikiTalkGen;
pub use zipf::Zipf;

use crate::edge::StreamEdge;

/// The three evaluation datasets of §VII-A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// CAIDA-like network traffic ("Network Flow" in the figures).
    NetworkFlow,
    /// LSBench-like streaming social data ("Social Stream").
    SocialStream,
    /// SNAP wiki-talk-like communication data ("Wiki-talk").
    WikiTalk,
}

impl Dataset {
    /// All datasets in the order the paper's figures present them.
    pub const ALL: [Dataset; 3] = [Dataset::NetworkFlow, Dataset::SocialStream, Dataset::WikiTalk];

    /// Display name matching the paper's figure captions.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::NetworkFlow => "NetworkFlow",
            Dataset::SocialStream => "SocialStream",
            Dataset::WikiTalk => "Wiki-talk",
        }
    }

    /// Generates `n_edges` edges of this dataset with the given seed.
    pub fn generate(self, n_edges: usize, seed: u64) -> Vec<StreamEdge> {
        match self {
            Dataset::NetworkFlow => NetworkFlowGen::default().generate(n_edges, seed),
            Dataset::SocialStream => SocialStreamGen::default().generate(n_edges, seed),
            Dataset::WikiTalk => WikiTalkGen::default().generate(n_edges, seed),
        }
    }
}

/// Shared sanity checks used by every generator's tests.
#[cfg(test)]
pub(crate) fn check_stream_invariants(edges: &[StreamEdge]) {
    let mut last_ts = 0;
    let mut last_id = None;
    for e in edges {
        assert!(e.ts.0 > last_ts, "timestamps strictly increase");
        last_ts = e.ts.0;
        if let Some(prev) = last_id {
            assert!(e.id.0 > prev, "ids strictly increase");
        }
        last_id = Some(e.id.0);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate() {
        for d in Dataset::ALL {
            let es = d.generate(2_000, 42);
            assert_eq!(es.len(), 2_000);
            check_stream_invariants(&es);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for d in Dataset::ALL {
            assert_eq!(d.generate(500, 7), d.generate(500, 7));
            assert_ne!(d.generate(500, 7), d.generate(500, 8));
        }
    }
}
