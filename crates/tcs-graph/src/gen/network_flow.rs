//! CAIDA-like synthetic network-traffic stream.
//!
//! The real dataset ("CAIDA Internet Anonymized Traces 2015") is a sequence
//! of communication records ⟨src IP/port, dst IP/port, protocol⟩. The paper
//! turns it into a streaming graph with a single vertex label `IP` and edge
//! labels ⟨*, dst-port, protocol⟩ where the source port is wildcarded and
//! the destination-port distribution is extremely skewed (the top 6 of
//! 65 520 ports — 0.01 % — cover more than half the records).
//!
//! This generator reproduces exactly those knobs: one vertex label, a
//! configurable edge-label alphabet sampled from a Zipf so skewed that the
//! head dominates, and Zipf-distributed host activity (a small set of
//! servers receives most traffic).

use super::zipf::Zipf;
use crate::edge::StreamEdge;
use crate::ids::{ELabel, EdgeId, Timestamp, VLabel, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the network-flow generator.
#[derive(Clone, Debug)]
pub struct NetworkFlowGen {
    /// Number of distinct hosts (IP addresses).
    pub n_hosts: usize,
    /// Number of distinct ⟨dst-port, protocol⟩ edge labels.
    pub n_edge_labels: usize,
    /// Zipf exponent for the edge-label distribution; 1.4 makes the top 6 of
    /// 64 labels carry >50 % of the mass, mirroring the CAIDA port skew.
    pub label_skew: f64,
    /// Zipf exponent for host activity (who talks / who is talked to).
    pub host_skew: f64,
}

impl Default for NetworkFlowGen {
    fn default() -> Self {
        NetworkFlowGen { n_hosts: 80_000, n_edge_labels: 64, label_skew: 1.4, host_skew: 0.95 }
    }
}

/// The single vertex label of this dataset ("IP").
pub const IP: VLabel = VLabel(0);

impl NetworkFlowGen {
    /// Generates `n_edges` flow records.
    pub fn generate(&self, n_edges: usize, seed: u64) -> Vec<StreamEdge> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6e65_7466_6c6f_7721);
        let hosts = Zipf::new(self.n_hosts, self.host_skew);
        let labels = Zipf::new(self.n_edge_labels, self.label_skew);
        // Host ranks are shuffled once so that "hot" hosts are not simply
        // ids 0..k — matching anonymized traces where hot IPs are arbitrary.
        let mut perm: Vec<u32> = (0..self.n_hosts as u32).collect();
        shuffle(&mut perm, &mut rng);
        let mut out = Vec::with_capacity(n_edges);
        let mut ts = 0u64;
        for i in 0..n_edges {
            // Mean gap of 1: increments drawn from {1, 1, 1, 1} — keep it
            // deterministic so window units equal edge counts exactly.
            ts += 1;
            let src = perm[hosts.sample(&mut rng)];
            let mut dst = perm[hosts.sample(&mut rng)];
            // Self-flows are meaningless in traffic data; redraw uniformly.
            while dst == src {
                dst = rng.gen_range(0..self.n_hosts as u32);
            }
            out.push(StreamEdge {
                id: EdgeId(i as u64),
                src: VertexId(src),
                dst: VertexId(dst),
                src_label: IP,
                dst_label: IP,
                label: ELabel(labels.sample(&mut rng) as u16),
                ts: Timestamp(ts),
            });
        }
        out
    }
}

/// Fisher–Yates shuffle (avoids pulling in `rand::seq` trait imports at call
/// sites; `SliceRandom::shuffle` would do the same).
fn shuffle<T, R: Rng>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn single_vertex_label_and_no_self_loops() {
        let es = NetworkFlowGen::default().generate(5_000, 1);
        for e in &es {
            assert_eq!(e.src_label, IP);
            assert_eq!(e.dst_label, IP);
            assert_ne!(e.src, e.dst);
        }
        super::super::check_stream_invariants(&es);
    }

    #[test]
    fn top_labels_dominate_like_caida() {
        // Paper: top 6 destination ports cover >50% of records.
        let es = NetworkFlowGen::default().generate(50_000, 2);
        let mut counts: HashMap<u16, usize> = HashMap::new();
        for e in &es {
            *counts.entry(e.label.0).or_default() += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top6: usize = freq.iter().take(6).sum();
        assert!(top6 * 2 > es.len(), "top-6 labels cover {top6}/{} (<50%)", es.len());
    }

    #[test]
    fn host_activity_is_skewed() {
        let es = NetworkFlowGen::default().generate(20_000, 3);
        let mut deg: HashMap<u32, usize> = HashMap::new();
        for e in &es {
            *deg.entry(e.src.0).or_default() += 1;
            *deg.entry(e.dst.0).or_default() += 1;
        }
        let mut d: Vec<usize> = deg.values().copied().collect();
        d.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = d.iter().take(d.len() / 100 + 1).sum();
        let total: usize = d.iter().sum();
        assert!(head * 10 > total, "top 1% of hosts carry >10% of endpoints");
    }

    #[test]
    fn mean_gap_is_one_unit() {
        let es = NetworkFlowGen::default().generate(1_000, 4);
        let span = es.last().unwrap().ts.0 - es.first().unwrap().ts.0;
        assert_eq!(span, 999, "unit gap ⇒ window units = edge counts");
    }
}
