//! The §VII-F case study scenario: an information-exfiltration attack
//! (Figure 1) planted inside benign network traffic.
//!
//! The paper monitors the Figure 1 pattern over internal traffic and
//! detects a ZeuS-botnet compromise. We cannot redistribute that capture,
//! so this module synthesizes the equivalent: Zipf-skewed benign flows
//! between hosts, web servers and other services, plus one (or more)
//! planted attack sequences
//!
//! ```text
//! victim → web server      (t1, HTTP)
//! web server → victim      (t2, HTTP payload: malware script)
//! victim → C&C server      (t3, TCP: registration)
//! C&C server → victim      (t4, TCP: command)
//! victim → C&C server      (t5, large exfiltration message)
//! ```
//!
//! with the timing order t1 < t2 < t3 < t4 < t5.

use crate::edge::StreamEdge;
use crate::ids::{ELabel, EdgeId, Timestamp, VLabel, VertexId};
use crate::query::{QueryEdge, QueryGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Vertex label: every vertex is an IP (as in the CAIDA encoding).
pub const IP: VLabel = VLabel(0);

/// Edge labels: traffic classes of the scenario.
pub mod traffic {
    use crate::ids::ELabel;
    /// HTTP request.
    pub const HTTP_REQ: ELabel = ELabel(1);
    /// HTTP response carrying a payload (scripts, pages…).
    pub const HTTP_PAYLOAD: ELabel = ELabel(2);
    /// Small TCP message (registrations, heartbeats…).
    pub const TCP_SMALL: ELabel = ELabel(3);
    /// TCP command/control-style message.
    pub const TCP_CMD: ELabel = ELabel(4);
    /// Large upload.
    pub const LARGE_MSG: ELabel = ELabel(5);
    /// Anything else (DNS, NTP…).
    pub const OTHER: ELabel = ELabel(6);
}

/// The Figure 1 query: victim V, web server W, C&C server B.
///
/// Edges (with the timing chain t1 < t2 < t3 < t4 < t5):
/// ε0 = V→W HTTP_REQ, ε1 = W→V HTTP_PAYLOAD, ε2 = V→B TCP_SMALL,
/// ε3 = B→V TCP_CMD, ε4 = V→B LARGE_MSG.
pub fn exfiltration_query() -> QueryGraph {
    // Vertices: 0 = victim, 1 = web server, 2 = C&C server; all label IP.
    QueryGraph::new(
        vec![IP, IP, IP],
        vec![
            QueryEdge { src: 0, dst: 1, label: traffic::HTTP_REQ },
            QueryEdge { src: 1, dst: 0, label: traffic::HTTP_PAYLOAD },
            QueryEdge { src: 0, dst: 2, label: traffic::TCP_SMALL },
            QueryEdge { src: 2, dst: 0, label: traffic::TCP_CMD },
            QueryEdge { src: 0, dst: 2, label: traffic::LARGE_MSG },
        ],
        &[(0, 1), (1, 2), (2, 3), (3, 4)],
    )
    .unwrap_or_else(|e| unreachable!("exfiltration query is valid: {e}"))
}

/// Scenario output: the traffic stream, the monitoring query, and the
/// timestamp of the planted attack's final (t5) edge.
pub fn build(seed: u64) -> (Vec<StreamEdge>, QueryGraph, u64) {
    build_sized(seed, 20_000, 10_000)
}

/// Builds `n_benign` benign flows over `n_hosts` hosts and plants one
/// attack in the middle. Timestamps advance one unit per edge.
pub fn build_sized(seed: u64, n_benign: usize, n_hosts: u32) -> (Vec<StreamEdge>, QueryGraph, u64) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa77a_c4c2);
    let classes = [
        traffic::HTTP_REQ,
        traffic::HTTP_PAYLOAD,
        traffic::TCP_SMALL,
        traffic::TCP_CMD,
        traffic::LARGE_MSG,
        traffic::OTHER,
    ];
    // Benign class mix: requests and payloads dominate; large uploads and
    // command-like messages are rare (which is what makes the pattern
    // selective).
    let weights = [30u32, 28, 20, 6, 4, 12];
    let total: u32 = weights.iter().sum();
    let mut edges: Vec<StreamEdge> = Vec::with_capacity(n_benign + 5);
    let mut next_id = 0u64;
    let mut push = |edges: &mut Vec<StreamEdge>, src: u32, dst: u32, label: ELabel| {
        let ts = edges.len() as u64 + 1;
        edges.push(StreamEdge {
            id: EdgeId(next_id),
            src: VertexId(src),
            dst: VertexId(dst),
            src_label: IP,
            dst_label: IP,
            label,
            ts: Timestamp(ts),
        });
        next_id += 1;
    };
    let attack_start = n_benign / 2;
    // Attack actors outside the benign host range so the plant is clean.
    let (victim, web, cnc) = (n_hosts, n_hosts + 1, n_hosts + 2);
    let mut attack_step = 0usize;
    let attack_gap = 4; // benign edges between consecutive attack edges
    let mut planted_at = 0u64;
    let mut i = 0usize;
    while i < n_benign || attack_step < 5 {
        let in_attack_window = i >= attack_start && attack_step < 5;
        if in_attack_window && (i - attack_start).is_multiple_of(attack_gap) {
            match attack_step {
                0 => push(&mut edges, victim, web, traffic::HTTP_REQ),
                1 => push(&mut edges, web, victim, traffic::HTTP_PAYLOAD),
                2 => push(&mut edges, victim, cnc, traffic::TCP_SMALL),
                3 => push(&mut edges, cnc, victim, traffic::TCP_CMD),
                _ => {
                    push(&mut edges, victim, cnc, traffic::LARGE_MSG);
                    planted_at = edges.last().map_or(planted_at, |e| e.ts.0);
                }
            }
            attack_step += 1;
            continue;
        }
        if i >= n_benign {
            // Filler traffic until the attack finishes.
            let a = rng.gen_range(0..n_hosts);
            let b = (a + 1 + rng.gen_range(0..n_hosts - 1)) % n_hosts;
            push(&mut edges, a, b, traffic::OTHER);
            i += 1;
            continue;
        }
        let mut x = rng.gen_range(0..total);
        let mut label = traffic::OTHER;
        for (w, &c) in weights.iter().zip(classes.iter()) {
            if x < *w {
                label = c;
                break;
            }
            x -= *w;
        }
        let a = rng.gen_range(0..n_hosts);
        let b = (a + 1 + rng.gen_range(0..n_hosts - 1)) % n_hosts;
        push(&mut edges, a, b, label);
        i += 1;
    }
    (edges, exfiltration_query(), planted_at)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    #[test]
    fn scenario_contains_exactly_one_attack() {
        let (edges, q, planted_at) = build_sized(1, 4_000, 2_000);
        assert!(planted_at > 0);
        assert_eq!(q.n_edges(), 5);
        // The five attack edges exist in order.
        let victim = 2_000u32;
        let attack: Vec<&StreamEdge> =
            edges.iter().filter(|e| e.src.0 >= victim || e.dst.0 >= victim).collect();
        assert_eq!(attack.len(), 5);
        for w in attack.windows(2) {
            assert!(w[0].ts < w[1].ts);
        }
        super::super::check_stream_invariants(&edges);
    }

    #[test]
    fn query_has_full_chain_order() {
        let q = exfiltration_query();
        assert!(q.order.is_total());
        assert!(q.order.lt(0, 4));
    }
}
