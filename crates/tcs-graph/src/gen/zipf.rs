//! A small Zipf sampler over `{0, …, n−1}`.
//!
//! `rand` without `rand_distr` has no Zipf distribution; the generators need
//! one to reproduce the heavy skew the paper reports (e.g. the top 0.01% of
//! destination ports covering >50% of CAIDA records). A precomputed CDF and
//! binary search is exact and fast enough for stream generation.

use rand::Rng;

/// Zipf distribution with exponent `s` over ranks `0..n` (rank 0 most
/// probable).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        assert!(s.is_finite(), "exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k` (for tests).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_most_probable() {
        let z = Zipf::new(50, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn samples_within_support_and_skewed() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            if k < 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 ranks carry well over a third of the mass.
        assert!(head as f64 / N as f64 > 0.35, "head mass {head}/{N}");
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn empty_support_panics() {
        Zipf::new(0, 1.0);
    }
}
