//! The time-based sliding window (Definition 2).
//!
//! A window of duration `|W|` at current time `t` covers the timespan
//! `(t − |W|, t]`. As edges arrive the window slides forward and edges whose
//! timestamp falls out of the timespan *expire*. [`SlidingWindow::advance`]
//! turns one arrival into a [`WindowEvent`] carrying the expiries (in
//! timestamp order) followed by the arrival — the exact sequence every engine
//! in this workspace consumes, which is also the order used to define
//! streaming consistency (Definition 11).

use crate::edge::StreamEdge;
use std::collections::VecDeque;

/// One tick of the stream: edges that left the window, then the new edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowEvent {
    /// Edges expired by this arrival, oldest first.
    pub expired: Vec<StreamEdge>,
    /// The newly arrived edge.
    pub arrival: StreamEdge,
}

/// One segment of a batched advance: the edges expired at this boundary,
/// then the run of arrivals admitted before the next expiry boundary.
///
/// Concatenating a step's `expired` (oldest first) and `arrivals` (stream
/// order) reproduces exactly the per-edge [`WindowEvent`] sequence: an
/// arrival that expires nothing is folded into the previous step's run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowBatchStep {
    /// Edges expired before the first arrival of this step, oldest first.
    pub expired: Vec<StreamEdge>,
    /// Consecutive arrivals with no expiry boundary between them.
    pub arrivals: Vec<StreamEdge>,
}

/// A batch of arrivals split at its expiry boundaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchEvent {
    /// Steps in stream order; every arrival of the batch appears in exactly
    /// one step, and only the first step may have an empty `expired` list.
    pub steps: Vec<WindowBatchStep>,
}

impl BatchEvent {
    /// Total arrivals across all steps.
    pub fn arrivals(&self) -> usize {
        self.steps.iter().map(|s| s.arrivals.len()).sum()
    }

    /// Total expiries across all steps.
    pub fn expiries(&self) -> usize {
        self.steps.iter().map(|s| s.expired.len()).sum()
    }
}

/// A time-based sliding window over a stream of [`StreamEdge`]s.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    duration: u64,
    buffer: VecDeque<StreamEdge>,
    last_ts: Option<u64>,
}

impl SlidingWindow {
    /// Creates a window of the given duration (in timestamp units).
    ///
    /// # Panics
    /// Panics if `duration == 0`; a zero-length window would expire every
    /// edge at the instant it arrives.
    pub fn new(duration: u64) -> Self {
        assert!(duration > 0, "window duration must be positive");
        SlidingWindow { duration, buffer: VecDeque::new(), last_ts: None }
    }

    /// The window duration `|W|`.
    #[inline]
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Edges currently inside the window, oldest first.
    pub fn edges(&self) -> impl Iterator<Item = &StreamEdge> {
        self.buffer.iter()
    }

    /// Number of live edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when no edge is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Slides the window to the arrival's timestamp and admits it.
    ///
    /// Returns the expired edges (those with `ts ≤ arrival.ts − |W|`) oldest
    /// first, paired with the arrival.
    ///
    /// # Panics
    /// Panics if timestamps are not nondecreasing. Equal timestamps are
    /// accepted: batched sources legitimately stamp several edges with one
    /// tick, and the `ClampToWatermark` ingestion policy (`tcs-core`)
    /// rewrites stragglers to exactly the watermark — the buffer stays
    /// sorted either way, which is all expiry needs.
    pub fn advance(&mut self, arrival: StreamEdge) -> WindowEvent {
        if let Some(last) = self.last_ts {
            assert!(
                arrival.ts.0 >= last,
                "stream timestamps must be nondecreasing ({} after {})",
                arrival.ts.0,
                last
            );
        }
        self.last_ts = Some(arrival.ts.0);
        let mut expired = Vec::new();
        // Only expire once `t − |W| ≥ 0` is representable: for `t < |W|`
        // the timespan `(t − |W|, t]` still covers every timestamp down to
        // 0, so even a `ts = 0` edge is live (a saturating bound of 0 would
        // wrongly expire it).
        if arrival.ts.0 >= self.duration {
            let bound = arrival.ts.0 - self.duration;
            while self.buffer.front().is_some_and(|front| front.ts.0 <= bound) {
                if let Some(e) = self.buffer.pop_front() {
                    expired.push(e);
                }
            }
        }
        self.buffer.push_back(arrival);
        WindowEvent { expired, arrival }
    }

    /// Slides the window across a whole batch of arrivals at once.
    ///
    /// Semantically identical to calling [`advance`](Self::advance) per
    /// edge; the per-edge events are merged into maximal expiry-free runs
    /// so batch consumers advance their stores once per boundary instead of
    /// once per edge.
    ///
    /// # Panics
    /// Panics if timestamps are not nondecreasing (same as `advance`).
    pub fn advance_batch(&mut self, arrivals: &[StreamEdge]) -> BatchEvent {
        let mut steps: Vec<WindowBatchStep> = Vec::new();
        for &a in arrivals {
            let ev = self.advance(a);
            match steps.last_mut() {
                Some(step) if ev.expired.is_empty() => step.arrivals.push(a),
                _ => steps.push(WindowBatchStep { expired: ev.expired, arrivals: vec![a] }),
            }
        }
        BatchEvent { steps }
    }

    /// Drains every remaining edge as expired (stream end).
    pub fn drain(&mut self) -> Vec<StreamEdge> {
        self.buffer.drain(..).collect()
    }
}

/// Adapts an edge iterator into a [`WindowEvent`] iterator.
pub fn events<I>(duration: u64, edges: I) -> impl Iterator<Item = WindowEvent>
where
    I: IntoIterator<Item = StreamEdge>,
{
    let mut w = SlidingWindow::new(duration);
    edges.into_iter().map(move |e| w.advance(e))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    fn edge(id: u64, ts: u64) -> StreamEdge {
        StreamEdge::new(id, 0, 0, 1, 0, 0, ts)
    }

    #[test]
    fn expiry_follows_paper_example() {
        // Figure 3/4: window size 9; at t=10 the edge with t=1 expires
        // because the timespan becomes (1, 10].
        let mut w = SlidingWindow::new(9);
        for t in 1..=9 {
            let ev = w.advance(edge(t, t));
            assert!(ev.expired.is_empty(), "no expiry through t=9");
        }
        let ev = w.advance(edge(10, 10));
        assert_eq!(ev.expired.len(), 1);
        assert_eq!(ev.expired[0].ts.0, 1);
        assert_eq!(w.len(), 9);
    }

    #[test]
    fn multiple_expiries_when_time_jumps() {
        let mut w = SlidingWindow::new(5);
        for t in [1, 2, 3] {
            w.advance(edge(t, t));
        }
        let ev = w.advance(edge(4, 100));
        assert_eq!(ev.expired.len(), 3);
        assert_eq!(ev.expired.iter().map(|e| e.ts.0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn non_monotone_timestamps_panic() {
        let mut w = SlidingWindow::new(5);
        w.advance(edge(1, 10));
        w.advance(edge(2, 9));
    }

    #[test]
    fn equal_timestamps_are_accepted() {
        // Nondecreasing, not strictly increasing: batched ticks and
        // watermark-clamped stragglers share a timestamp legally, and both
        // edges expire together when the window passes them.
        let mut w = SlidingWindow::new(5);
        w.advance(edge(1, 10));
        let ev = w.advance(edge(2, 10));
        assert!(ev.expired.is_empty());
        assert_eq!(w.len(), 2);
        let ev2 = w.advance(edge(3, 15));
        assert_eq!(ev2.expired.iter().map(|e| e.id.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_panics() {
        SlidingWindow::new(0);
    }

    #[test]
    fn drain_returns_rest() {
        let mut w = SlidingWindow::new(100);
        for t in 1..=4 {
            w.advance(edge(t, t));
        }
        let rest = w.drain();
        assert_eq!(rest.len(), 4);
        assert!(w.is_empty());
    }

    #[test]
    fn events_adapter_matches_manual_loop() {
        let es: Vec<_> = (1..=20).map(|t| edge(t, t * 3)).collect();
        let via_adapter: Vec<_> = events(10, es.clone()).collect();
        let mut w = SlidingWindow::new(10);
        let manual: Vec<_> = es.into_iter().map(|e| w.advance(e)).collect();
        assert_eq!(via_adapter, manual);
    }

    #[test]
    fn ts_zero_edge_survives_while_window_covers_it() {
        // Regression: with |W| = 5 the window at t = 3 is (−2, 3], which
        // contains ts = 0; the saturating bound used to clamp to 0 and
        // expire the edge anyway.
        let mut w = SlidingWindow::new(5);
        let ev0 = w.advance(edge(1, 0));
        assert!(ev0.expired.is_empty());
        let ev = w.advance(edge(2, 3));
        assert!(ev.expired.is_empty(), "ts=0 is inside (−2, 3]");
        assert_eq!(w.len(), 2);
        // At t = 5 the timespan is (0, 5]: now ts = 0 expires.
        let ev2 = w.advance(edge(3, 5));
        assert_eq!(ev2.expired.len(), 1);
        assert_eq!(ev2.expired[0].ts.0, 0);
    }

    #[test]
    fn advance_batch_flattens_to_per_edge_events() {
        // Nondecreasing timestamps with ties and jumps: increments cycle
        // through 2, 4, 1, 3, 0.
        let mut ts = 0u64;
        let es: Vec<_> = (1..=40)
            .map(|t| {
                ts += (t * 7) % 5;
                edge(t, ts)
            })
            .collect();
        let mut per_edge = SlidingWindow::new(10);
        let evs: Vec<_> = es.iter().map(|&e| per_edge.advance(e)).collect();
        for split in [1usize, 3, 17, 40] {
            let mut batched = SlidingWindow::new(10);
            let mut flat: Vec<(Vec<StreamEdge>, Vec<StreamEdge>)> = Vec::new();
            for chunk in es.chunks(split) {
                let bev = batched.advance_batch(chunk);
                assert_eq!(bev.arrivals(), chunk.len());
                for (k, step) in bev.steps.iter().enumerate() {
                    assert!(!step.arrivals.is_empty(), "steps carry at least one arrival");
                    assert!(k == 0 || !step.expired.is_empty(), "later steps start at a boundary");
                    flat.push((step.expired.clone(), step.arrivals.clone()));
                }
            }
            // Re-derive the per-edge event list from the steps.
            let mut rebuilt = Vec::new();
            for (expired, arrivals) in flat {
                let mut expired = Some(expired);
                for a in arrivals {
                    rebuilt.push(WindowEvent {
                        expired: expired.take().unwrap_or_default(),
                        arrival: a,
                    });
                }
            }
            assert_eq!(rebuilt, evs, "batch of {split} must flatten to per-edge events");
            assert_eq!(batched.len(), per_edge.len());
        }
    }

    #[test]
    fn advance_batch_of_empty_slice_is_noop() {
        let mut w = SlidingWindow::new(5);
        w.advance(edge(1, 1));
        let bev = w.advance_batch(&[]);
        assert!(bev.steps.is_empty());
        assert_eq!(bev.arrivals() + bev.expiries(), 0);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn boundary_is_half_open() {
        // Window (t-|W|, t]: an edge exactly at t-|W| expires.
        let mut w = SlidingWindow::new(9);
        w.advance(edge(1, 1));
        let ev = w.advance(edge(2, 10));
        assert_eq!(ev.expired.len(), 1, "ts=1 is outside (1,10]");
    }
}
