//! Plain-text serialization of streams and queries.
//!
//! The formats are line-oriented and diff-friendly so experiment inputs can
//! be checked into a repository or produced by external tools:
//!
//! * **Stream line**: `id src src_label dst dst_label edge_label ts`
//! * **Query file**: a `v` line per vertex (`v <index> <label>`), an `e` line
//!   per edge (`e <src> <dst> <label>`), and a `t` line per timing pair
//!   (`t <before> <after>`), with `#` comments.
//! * **Edge-stream line** (s-graffito style, the format public streaming
//!   graph datasets ship in): `src dst label ts`, where `src`, `dst` and
//!   `label` may be integers or arbitrary strings (interned to dense
//!   ids) — see [`edge_stream_from_str`].

use crate::edge::StreamEdge;
use crate::query::{QueryEdge, QueryError, QueryGraph};
use crate::{ELabel, VLabel};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::num::ParseIntError;

/// Errors from the text parsers.
#[derive(Debug)]
pub enum ParseError {
    /// A line had the wrong number of fields.
    Arity { line: usize, expected: usize, got: usize },
    /// A field failed integer parsing.
    Int { line: usize, source: ParseIntError },
    /// Unknown record tag in a query file.
    UnknownTag { line: usize, tag: String },
    /// The parsed query failed validation.
    Query(QueryError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Arity { line, expected, got } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            ParseError::Int { line, source } => write!(f, "line {line}: {source}"),
            ParseError::UnknownTag { line, tag } => write!(f, "line {line}: unknown tag {tag:?}"),
            ParseError::Query(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a stream to the line format.
pub fn stream_to_string(edges: &[StreamEdge]) -> String {
    let mut s = String::with_capacity(edges.len() * 32);
    for e in edges {
        writeln!(
            s,
            "{} {} {} {} {} {} {}",
            e.id.0, e.src.0, e.src_label.0, e.dst.0, e.dst_label.0, e.label.0, e.ts.0
        )
        .unwrap_or_else(|_| unreachable!());
    }
    s
}

/// Parses a stream from the line format; blank lines and `#` comments are
/// skipped.
pub fn stream_from_str(text: &str) -> Result<Vec<StreamEdge>, ParseError> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 7 {
            return Err(ParseError::Arity { line: ln + 1, expected: 7, got: fields.len() });
        }
        let p = |s: &str| -> Result<u64, ParseError> {
            s.parse().map_err(|source| ParseError::Int { line: ln + 1, source })
        };
        out.push(StreamEdge::new(
            p(fields[0])?,
            p(fields[1])? as u32,
            p(fields[2])? as u16,
            p(fields[3])? as u32,
            p(fields[4])? as u16,
            p(fields[5])? as u16,
            p(fields[6])?,
        ));
    }
    Ok(out)
}

/// An edge stream parsed from the s-graffito-style text format, with the
/// interning tables that map the file's names back from the dense ids.
#[derive(Debug, Default)]
pub struct TextStream {
    /// The parsed edges, in file order (real datasets are not always
    /// timestamp-sorted — sort before feeding a strict-order gate).
    pub edges: Vec<StreamEdge>,
    /// Interned vertex names: index = the `VertexId` assigned to it.
    pub vertices: Vec<String>,
    /// Interned edge-label names: index = the `ELabel` assigned to it.
    pub edge_labels: Vec<String>,
}

/// Parses an s-graffito-style edge stream: one `src dst label ts` line
/// per edge, `#` comments and blank lines skipped. `src`, `dst` and
/// `label` may be integers or arbitrary strings — either way they are
/// interned, in order of first appearance, to dense `VertexId`s /
/// `ELabel`s (so `7` and `"alice"` can mix freely); `ts` must parse as
/// `u64`. Edge ids are assigned sequentially from 1. Public datasets
/// carry no vertex labels, so each vertex gets
/// `VLabel(vertex_id % n_vertex_labels)` — a deterministic partition
/// queries can target (pass 1 for unlabeled matching).
pub fn edge_stream_from_str(text: &str, n_vertex_labels: u16) -> Result<TextStream, ParseError> {
    assert!(n_vertex_labels >= 1, "need at least one vertex label class");
    fn intern<'a>(
        name: &'a str,
        ids: &mut HashMap<&'a str, usize>,
        names: &mut Vec<String>,
    ) -> usize {
        if let Some(&id) = ids.get(name) {
            return id;
        }
        let id = names.len();
        names.push(name.to_string());
        ids.insert(name, id);
        id
    }
    let mut out = TextStream::default();
    let mut vertex_ids: HashMap<&str, usize> = HashMap::new();
    let mut label_ids: HashMap<&str, usize> = HashMap::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseError::Arity { line: ln + 1, expected: 4, got: fields.len() });
        }
        let src = intern(fields[0], &mut vertex_ids, &mut out.vertices) as u32;
        let dst = intern(fields[1], &mut vertex_ids, &mut out.vertices) as u32;
        let label = intern(fields[2], &mut label_ids, &mut out.edge_labels) as u16;
        let ts: u64 =
            fields[3].parse().map_err(|source| ParseError::Int { line: ln + 1, source })?;
        out.edges.push(StreamEdge::new(
            out.edges.len() as u64 + 1,
            src,
            (src % u32::from(n_vertex_labels)) as u16,
            dst,
            (dst % u32::from(n_vertex_labels)) as u16,
            label,
            ts,
        ));
    }
    Ok(out)
}

/// Serializes a query to the `v`/`e`/`t` format.
pub fn query_to_string(q: &QueryGraph) -> String {
    let mut s = String::new();
    for (i, l) in q.vertex_labels.iter().enumerate() {
        writeln!(s, "v {i} {}", l.0).unwrap_or_else(|_| unreachable!());
    }
    for e in &q.edges {
        writeln!(s, "e {} {} {}", e.src, e.dst, e.label.0).unwrap_or_else(|_| unreachable!());
    }
    for &(a, b) in q.order.pairs() {
        writeln!(s, "t {a} {b}").unwrap_or_else(|_| unreachable!());
    }
    s
}

/// Parses a query from the `v`/`e`/`t` format.
pub fn query_from_str(text: &str) -> Result<QueryGraph, ParseError> {
    let mut labels: Vec<(usize, VLabel)> = Vec::new();
    let mut edges = Vec::new();
    let mut pairs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let p = |s: &str| -> Result<usize, ParseError> {
            s.parse().map_err(|source| ParseError::Int { line: ln + 1, source })
        };
        match fields[0] {
            "v" => {
                if fields.len() != 3 {
                    return Err(ParseError::Arity { line: ln + 1, expected: 3, got: fields.len() });
                }
                labels.push((p(fields[1])?, VLabel(p(fields[2])? as u16)));
            }
            "e" => {
                if fields.len() != 4 {
                    return Err(ParseError::Arity { line: ln + 1, expected: 4, got: fields.len() });
                }
                edges.push(QueryEdge {
                    src: p(fields[1])?,
                    dst: p(fields[2])?,
                    label: ELabel(p(fields[3])? as u16),
                });
            }
            "t" => {
                if fields.len() != 3 {
                    return Err(ParseError::Arity { line: ln + 1, expected: 3, got: fields.len() });
                }
                pairs.push((p(fields[1])?, p(fields[2])?));
            }
            tag => {
                return Err(ParseError::UnknownTag { line: ln + 1, tag: tag.to_string() });
            }
        }
    }
    labels.sort_by_key(|&(i, _)| i);
    let vlabels: Vec<VLabel> = labels.into_iter().map(|(_, l)| l).collect();
    QueryGraph::new(vlabels, edges, &pairs).map_err(ParseError::Query)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;
    use crate::gen::Dataset;

    #[test]
    fn stream_round_trip() {
        let es = Dataset::NetworkFlow.generate(200, 4);
        let text = stream_to_string(&es);
        let back = stream_from_str(&text).unwrap();
        assert_eq!(es, back);
    }

    #[test]
    fn query_round_trip() {
        let q = QueryGraph::running_example();
        let text = query_to_string(&q);
        let back = query_from_str(&text).unwrap();
        assert_eq!(q.vertex_labels, back.vertex_labels);
        assert_eq!(q.edges, back.edges);
        assert_eq!(q.order, back.order);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a stream\n\n1 0 0 1 0 0 1\n";
        let es = stream_from_str(text).unwrap();
        assert_eq!(es.len(), 1);
    }

    #[test]
    fn arity_error_reported_with_line() {
        let err = stream_from_str("1 2 3").unwrap_err();
        assert!(matches!(err, ParseError::Arity { line: 1, .. }));
    }

    #[test]
    fn unknown_tag_rejected() {
        let err = query_from_str("x 1 2").unwrap_err();
        assert!(matches!(err, ParseError::UnknownTag { .. }));
    }

    #[test]
    fn edge_stream_interns_mixed_ids() {
        let text = "# s-graffito style\nalice bob follows 10\n7 alice follows 11\nbob 7 pays 12\n";
        let s = edge_stream_from_str(text, 2).unwrap();
        assert_eq!(s.vertices, vec!["alice", "bob", "7"]);
        assert_eq!(s.edge_labels, vec!["follows", "pays"]);
        assert_eq!(s.edges.len(), 3);
        // alice=0, bob=1, 7=2; labels derived as id % 2.
        let e = s.edges[1];
        assert_eq!((e.id.0, e.src.0, e.dst.0), (2, 2, 0));
        assert_eq!((e.src_label.0, e.dst_label.0), (0, 0));
        assert_eq!((e.label.0, e.ts.0), (0, 11));
        let e = s.edges[2];
        assert_eq!((e.src.0, e.src_label.0, e.dst.0, e.dst_label.0), (1, 1, 2, 0));
        assert_eq!(e.label.0, 1);
    }

    #[test]
    fn edge_stream_arity_and_int_errors() {
        let err = edge_stream_from_str("a b c\n", 1).unwrap_err();
        assert!(matches!(err, ParseError::Arity { line: 1, expected: 4, got: 3 }));
        let err = edge_stream_from_str("a b c soon\n", 1).unwrap_err();
        assert!(matches!(err, ParseError::Int { line: 1, .. }));
    }

    #[test]
    fn bad_int_rejected() {
        let err = stream_from_str("a 0 0 1 0 0 1").unwrap_err();
        assert!(matches!(err, ParseError::Int { line: 1, .. }));
    }
}
