//! Streaming-graph substrate for time-constrained continuous subgraph search.
//!
//! This crate provides everything the paper's engine and its baselines need
//! from the data side:
//!
//! * [`ids`] — strongly-typed identifiers ([`VertexId`], [`EdgeId`], labels,
//!   [`Timestamp`]).
//! * [`edge`] — the timestamped, labelled [`StreamEdge`] (Definition 1 of the
//!   paper).
//! * [`query`] — the query graph with a strict partial *timing order* over its
//!   edges (Definition 3), including transitive-closure bitmasks and
//!   prerequisite subqueries (Definition 6).
//! * [`window`] — the time-based sliding window (Definition 2) that turns a
//!   stream of arrivals into arrival + expiry events.
//! * [`snapshot`] — the current-window snapshot graph `G_t` with adjacency and
//!   label indexes, used by snapshot-based baselines.
//! * [`matching`] — the canonical match record (Definition 4) shared by every
//!   engine so results can be compared exactly.
//! * [`gen`] — synthetic dataset generators standing in for the paper's CAIDA
//!   network-flow, LSBench social-stream and SNAP wiki-talk datasets, plus the
//!   random-walk query generator of §VII-B.
//! * [`io`] — plain-text serialization of streams and queries.

#![forbid(unsafe_code)]

pub mod edge;
pub mod gen;
pub mod ids;
pub mod io;
pub mod matching;
pub mod query;
pub mod snapshot;
pub mod window;

pub use edge::StreamEdge;
pub use ids::{ELabel, EdgeId, Timestamp, VLabel, VertexId};
pub use matching::MatchRecord;
pub use query::{QueryEdge, QueryGraph, TimingOrder};
pub use snapshot::{LiveEdgeView, Snapshot};
pub use window::{BatchEvent, SlidingWindow, WindowBatchStep, WindowEvent};
