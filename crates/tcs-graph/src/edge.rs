//! The timestamped, labelled stream edge (Definition 1).

use crate::ids::{ELabel, EdgeId, Timestamp, VLabel, VertexId};
use serde::{Deserialize, Serialize};

/// One directed edge of a streaming graph.
///
/// The paper's streaming graph is a constantly growing sequence of directed
/// edges `σ_1, σ_2, …` where `σ_i` arrives at time `t_i` and `t_i < t_j` for
/// `i < j`. Vertex labels are carried on the edge so a consumer never needs a
/// global vertex table, and an optional edge label supports the edge-labelled
/// datasets of §VII-A (the paper folds edge labels into imaginary vertices;
/// carrying them natively is the "not more complicated" general case).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamEdge {
    /// Stream-unique identifier (also the arrival index by construction of
    /// all generators in this crate).
    pub id: EdgeId,
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Label of the source vertex.
    pub src_label: VLabel,
    /// Label of the destination vertex.
    pub dst_label: VLabel,
    /// Edge label ([`ELabel::NONE`] when the dataset has none).
    pub label: ELabel,
    /// Arrival timestamp; strictly increasing along the stream.
    pub ts: Timestamp,
}

impl StreamEdge {
    /// Convenience constructor used heavily by tests and generators.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        src: u32,
        src_label: u16,
        dst: u32,
        dst_label: u16,
        label: u16,
        ts: u64,
    ) -> Self {
        StreamEdge {
            id: EdgeId(id),
            src: VertexId(src),
            dst: VertexId(dst),
            src_label: VLabel(src_label),
            dst_label: VLabel(dst_label),
            label: ELabel(label),
            ts: Timestamp(ts),
        }
    }

    /// The label signature used to decide which query edges this data edge
    /// can match: (source vertex label, destination vertex label, edge label).
    #[inline]
    pub fn signature(&self) -> (VLabel, VLabel, ELabel) {
        (self.src_label, self.dst_label, self.label)
    }

    /// Whether this edge touches the given vertex (as source or destination).
    #[inline]
    pub fn touches(&self, v: VertexId) -> bool {
        self.src == v || self.dst == v
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    #[test]
    fn signature_and_touches() {
        let e = StreamEdge::new(1, 10, 2, 20, 3, 7, 42);
        assert_eq!(e.signature(), (VLabel(2), VLabel(3), ELabel(7)));
        assert!(e.touches(VertexId(10)));
        assert!(e.touches(VertexId(20)));
        assert!(!e.touches(VertexId(30)));
    }

    #[test]
    fn self_loop_touches_once() {
        let e = StreamEdge::new(1, 5, 0, 5, 0, 0, 1);
        assert!(e.touches(VertexId(5)));
    }
}
