//! Strongly-typed identifiers used throughout the workspace.
//!
//! All identifiers are thin newtypes over small integers so they are `Copy`,
//! hash fast and keep match records compact (see the type-size advice in the
//! Rust performance guidance this repo follows).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A data-graph vertex identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// A data-graph edge identifier, unique over the whole stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u64);

/// A vertex label (e.g. `IP`, `user`, `post`, or a letter bucket).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VLabel(pub u16);

/// An edge label (e.g. a ⟨dst-port, protocol⟩ bucket or a predicate).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ELabel(pub u16);

/// A logical timestamp. Stream edges carry strictly increasing timestamps
/// (Definition 1), so `Timestamp` also totally orders edge arrivals.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl ELabel {
    /// The "no edge label" value used by datasets that only label vertices
    /// (e.g. wiki-talk).
    pub const NONE: ELabel = ELabel(0);
}

impl Timestamp {
    /// Saturating subtraction; convenient for computing the left window bound
    /// `t - |W|` without underflow at stream start.
    #[inline]
    pub fn saturating_sub(self, d: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(d))
    }
}

macro_rules! impl_debug_display {
    ($t:ty, $prefix:literal) => {
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_debug_display!(VertexId, "v");
impl_debug_display!(EdgeId, "e");
impl_debug_display!(VLabel, "L");
impl_debug_display!(ELabel, "l");
impl_debug_display!(Timestamp, "t");

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 8);
        assert_eq!(std::mem::size_of::<VLabel>(), 2);
        assert_eq!(std::mem::size_of::<Timestamp>(), 8);
    }

    #[test]
    fn timestamp_saturating_sub() {
        assert_eq!(Timestamp(10).saturating_sub(3), Timestamp(7));
        assert_eq!(Timestamp(2).saturating_sub(9), Timestamp(0));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", VertexId(3)), "v3");
        assert_eq!(format!("{:?}", EdgeId(7)), "e7");
        assert_eq!(format!("{}", Timestamp(5)), "5");
    }

    #[test]
    fn ordering_follows_inner_value() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(EdgeId(1) < EdgeId(2));
        assert!(VertexId(1) < VertexId(2));
    }
}
