//! Query graphs with timing-order constraints (Definitions 3, 6, 7).
//!
//! A [`QueryGraph`] is a connected, directed, vertex/edge-labelled graph
//! together with a strict partial order ≺ over its edges — the *timing
//! order*. `i ≺ j` requires the data edge matched to query edge `i` to carry
//! a smaller timestamp than the one matched to query edge `j`.
//!
//! Queries are small (the paper evaluates up to 21 edges), so the timing
//! order's transitive closure is stored as one `u64` bitmask per query edge;
//! every reachability / prerequisite query is then a couple of bit
//! operations. Queries are limited to [`MAX_QUERY_EDGES`] edges.

use crate::ids::{ELabel, VLabel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of edges in a query graph (bitmask-backed closure).
pub const MAX_QUERY_EDGES: usize = 64;

/// A directed query edge between query-local vertex indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryEdge {
    /// Index of the source vertex in [`QueryGraph::vertex_labels`].
    pub src: usize,
    /// Index of the destination vertex.
    pub dst: usize,
    /// Edge label ([`ELabel::NONE`] if unlabelled).
    pub label: ELabel,
}

/// Errors produced while building or validating a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// More than [`MAX_QUERY_EDGES`] edges.
    TooManyEdges(usize),
    /// An edge referenced a vertex index that does not exist.
    DanglingVertex { edge: usize, vertex: usize },
    /// A timing constraint referenced a non-existent edge index.
    DanglingTiming(usize),
    /// The timing order is not a strict partial order (it has a cycle,
    /// possibly a self-loop `i ≺ i`).
    CyclicTiming,
    /// The query structure is not weakly connected.
    Disconnected,
    /// The query has no edges.
    Empty,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::TooManyEdges(n) => {
                write!(f, "query has {n} edges, maximum is {MAX_QUERY_EDGES}")
            }
            QueryError::DanglingVertex { edge, vertex } => {
                write!(f, "edge {edge} references unknown vertex {vertex}")
            }
            QueryError::DanglingTiming(e) => {
                write!(f, "timing constraint references unknown edge {e}")
            }
            QueryError::CyclicTiming => write!(f, "timing order contains a cycle"),
            QueryError::Disconnected => write!(f, "query graph is not weakly connected"),
            QueryError::Empty => write!(f, "query graph has no edges"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The transitive closure of the timing order, as per-edge bitmasks.
///
/// `before[j]` has bit `i` set iff `i ≺ j` (edge `i` must arrive before edge
/// `j`); `after[i]` has bit `j` set iff `i ≺ j`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingOrder {
    before: Vec<u64>,
    after: Vec<u64>,
    /// The user-supplied (non-closed) constraint pairs, kept for display and
    /// for serialization round-trips.
    pairs: Vec<(usize, usize)>,
}

impl TimingOrder {
    /// Builds the closure from explicit `(i, j)` pairs meaning `i ≺ j`.
    ///
    /// Returns an error if any index is out of range or the relation is not
    /// acyclic (a strict partial order cannot contain cycles).
    pub fn new(n_edges: usize, pairs: &[(usize, usize)]) -> Result<Self, QueryError> {
        if n_edges > MAX_QUERY_EDGES {
            return Err(QueryError::TooManyEdges(n_edges));
        }
        let mut before = vec![0u64; n_edges];
        for &(i, j) in pairs {
            if i >= n_edges {
                return Err(QueryError::DanglingTiming(i));
            }
            if j >= n_edges {
                return Err(QueryError::DanglingTiming(j));
            }
            before[j] |= 1u64 << i;
        }
        // Transitive closure: iterate until fixpoint. Queries are tiny, so a
        // simple O(n^2·rounds) loop over bitmasks is plenty fast.
        let mut changed = true;
        while changed {
            changed = false;
            for j in 0..n_edges {
                let mut acc = before[j];
                let mut preds = before[j];
                while preds != 0 {
                    let i = preds.trailing_zeros() as usize;
                    preds &= preds - 1;
                    acc |= before[i];
                }
                if acc != before[j] {
                    before[j] = acc;
                    changed = true;
                }
            }
        }
        // A strict partial order is irreflexive; after closure a cycle shows
        // up as `i ≺ i`.
        for (j, &mask) in before.iter().enumerate() {
            if mask & (1u64 << j) != 0 {
                return Err(QueryError::CyclicTiming);
            }
        }
        let mut after = vec![0u64; n_edges];
        for (j, &mask) in before.iter().enumerate() {
            let mut preds = mask;
            while preds != 0 {
                let i = preds.trailing_zeros() as usize;
                preds &= preds - 1;
                after[i] |= 1u64 << j;
            }
        }
        Ok(TimingOrder { before, after, pairs: pairs.to_vec() })
    }

    /// An empty timing order over `n_edges` edges (`≺ = ∅`).
    pub fn empty(n_edges: usize) -> Self {
        TimingOrder::new(n_edges, &[])
            .unwrap_or_else(|e| unreachable!("empty order is always valid: {e}"))
    }

    /// Number of edges this order ranges over.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.before.len()
    }

    /// Whether `i ≺ j` holds in the closure.
    #[inline]
    pub fn lt(&self, i: usize, j: usize) -> bool {
        self.before[j] & (1u64 << i) != 0
    }

    /// Bitmask of all edges `i` with `i ≺ j`.
    #[inline]
    pub fn before_mask(&self, j: usize) -> u64 {
        self.before[j]
    }

    /// Bitmask of all edges `j` with `i ≺ j`.
    #[inline]
    pub fn after_mask(&self, i: usize) -> u64 {
        self.after[i]
    }

    /// Prerequisite edge set `Preq(j) = {i | i ≺ j} ∪ {j}` (Definition 6).
    #[inline]
    pub fn preq_mask(&self, j: usize) -> u64 {
        self.before[j] | (1u64 << j)
    }

    /// The original (pre-closure) constraint pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// True when the closure contains no constraint at all.
    pub fn is_empty(&self) -> bool {
        self.before.iter().all(|&m| m == 0)
    }

    /// True when the closure is a total order over all edges.
    pub fn is_total(&self) -> bool {
        let n = self.n_edges();
        (0..n).all(|j| self.before[j].count_ones() as usize + self.count_after(j) == n - 1)
    }

    fn count_after(&self, i: usize) -> usize {
        self.after[i].count_ones() as usize
    }
}

/// A continuous query: structure + labels + timing order (Definition 3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    /// Label of each query vertex, indexed by vertex id.
    pub vertex_labels: Vec<VLabel>,
    /// Directed query edges; the edge index is the canonical identity used by
    /// the timing order, match records, decompositions and stores.
    pub edges: Vec<QueryEdge>,
    /// Timing-order closure over `edges`.
    pub order: TimingOrder,
}

impl QueryGraph {
    /// Builds and validates a query.
    pub fn new(
        vertex_labels: Vec<VLabel>,
        edges: Vec<QueryEdge>,
        timing_pairs: &[(usize, usize)],
    ) -> Result<Self, QueryError> {
        if edges.is_empty() {
            return Err(QueryError::Empty);
        }
        if edges.len() > MAX_QUERY_EDGES {
            return Err(QueryError::TooManyEdges(edges.len()));
        }
        for (i, e) in edges.iter().enumerate() {
            for v in [e.src, e.dst] {
                if v >= vertex_labels.len() {
                    return Err(QueryError::DanglingVertex { edge: i, vertex: v });
                }
            }
        }
        let order = TimingOrder::new(edges.len(), timing_pairs)?;
        let q = QueryGraph { vertex_labels, edges, order };
        let all = if q.edges.len() == 64 { u64::MAX } else { (1u64 << q.edges.len()) - 1 };
        if !q.edge_set_connected(all) {
            return Err(QueryError::Disconnected);
        }
        Ok(q)
    }

    /// Number of query edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of query vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.vertex_labels.len()
    }

    /// The label signature a data edge must carry to match query edge `e`.
    #[inline]
    pub fn signature(&self, e: usize) -> (VLabel, VLabel, ELabel) {
        let qe = &self.edges[e];
        (self.vertex_labels[qe.src], self.vertex_labels[qe.dst], qe.label)
    }

    /// Whether two query edges share at least one endpoint.
    pub fn edges_adjacent(&self, a: usize, b: usize) -> bool {
        let (ea, eb) = (&self.edges[a], &self.edges[b]);
        ea.src == eb.src || ea.src == eb.dst || ea.dst == eb.src || ea.dst == eb.dst
    }

    /// Whether the subquery induced by the edges in `mask` is weakly
    /// connected (Definition 7 building block). The empty set and singletons
    /// are connected by convention.
    pub fn edge_set_connected(&self, mask: u64) -> bool {
        let count = mask.count_ones();
        if count <= 1 {
            return true;
        }
        let first = mask.trailing_zeros() as usize;
        let mut visited = 1u64 << first;
        let mut frontier = visited;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let e = f.trailing_zeros() as usize;
                f &= f - 1;
                let mut rest = mask & !visited;
                while rest != 0 {
                    let g = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if self.edges_adjacent(e, g) {
                        next |= 1u64 << g;
                    }
                }
            }
            visited |= next;
            frontier = next;
        }
        visited.count_ones() == count
    }

    /// Set of vertex indices touched by the edges in `mask`, as a bitmask
    /// (queries are small, so vertices also fit in a `u64` in practice; falls
    /// back to a `Vec<bool>` beyond 64 vertices).
    pub fn vertices_of(&self, mask: u64) -> Vec<usize> {
        let mut seen = vec![false; self.n_vertices()];
        let mut out = Vec::new();
        let mut m = mask;
        while m != 0 {
            let e = m.trailing_zeros() as usize;
            m &= m - 1;
            for v in [self.edges[e].src, self.edges[e].dst] {
                if !seen[v] {
                    seen[v] = true;
                    out.push(v);
                }
            }
        }
        out
    }

    /// The diameter of the query treated as an undirected graph, in hops.
    /// Used by the IncMat baseline to bound the affected area of an update.
    pub fn diameter(&self) -> usize {
        let n = self.n_vertices();
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.src].push(e.dst);
            adj[e.dst].push(e.src);
        }
        let mut best = 0;
        for s in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            best = best.max(dist.iter().copied().filter(|&d| d != usize::MAX).max().unwrap_or(0));
        }
        best
    }

    /// The running example of the paper (Figure 5): 6 vertices a–f, 6 edges,
    /// timing order 6 ≺ 3 ≺ 1 and 6 ≺ 5 ≺ 4 (using the paper's 1-based edge
    /// numbers; our edge indices are 0-based, i.e. paper edge `k` is index
    /// `k-1`).
    pub fn running_example() -> QueryGraph {
        // Vertices: 0=a, 1=b, 2=c, 3=d, 4=e, 5=f with distinct labels.
        let labels = (0..6).map(VLabel).collect();
        // Edges follow Figure 5a: ε1=(a→b)? The figure draws:
        //   ε1: d→a? — the figure is schematic; what matters for all of the
        // paper's algebra is adjacency + the timing order, which we replicate:
        //   ε1 joins a–b, ε2 joins b–c, ε3 joins a–d(?) ...
        // We use the decomposition of Figure 8: Q1 = {ε6, ε5, ε4} on vertices
        // {c,d,e,f}, Q2 = {ε3, ε1} on {a,b,d}, Q3 = {ε2} on {b,c}; and the
        // prerequisite subqueries of Figure 6.
        // Edge shapes follow Figure 11's stored matches: ε1 = a→b
        // (σ8 = a1→b3 matches ε1), ε3 = d→b (σ7 = d5→b3 matches ε3).
        let edges = vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE }, // ε1: a→b
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE }, // ε2: b→c
            QueryEdge { src: 3, dst: 1, label: ELabel::NONE }, // ε3: d→b
            QueryEdge { src: 3, dst: 2, label: ELabel::NONE }, // ε4: d→c
            QueryEdge { src: 2, dst: 4, label: ELabel::NONE }, // ε5: c→e
            QueryEdge { src: 4, dst: 5, label: ELabel::NONE }, // ε6: e→f
        ];
        // 6 ≺ 3 ≺ 1 and 6 ≺ 5 ≺ 4 (1-based) → (5,2),(2,0),(5,4),(4,3).
        QueryGraph::new(labels, edges, &[(5, 2), (2, 0), (5, 4), (4, 3)])
            .unwrap_or_else(|e| unreachable!("running example is valid: {e}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic by design
mod tests {
    use super::*;

    fn path_query(n_edges: usize) -> QueryGraph {
        // v0 -> v1 -> ... with distinct labels, no timing order.
        let labels = (0..=n_edges as u16).map(VLabel).collect();
        let edges =
            (0..n_edges).map(|i| QueryEdge { src: i, dst: i + 1, label: ELabel::NONE }).collect();
        QueryGraph::new(labels, edges, &[]).unwrap()
    }

    #[test]
    fn closure_is_transitive() {
        let o = TimingOrder::new(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(o.lt(0, 3));
        assert!(o.lt(1, 3));
        assert!(o.lt(0, 2));
        assert!(!o.lt(3, 0));
        assert!(o.is_total());
    }

    #[test]
    fn cycle_is_rejected() {
        assert_eq!(
            TimingOrder::new(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err(),
            QueryError::CyclicTiming
        );
        assert_eq!(TimingOrder::new(2, &[(1, 1)]).unwrap_err(), QueryError::CyclicTiming);
    }

    #[test]
    fn preq_contains_self_and_predecessors() {
        let o = TimingOrder::new(3, &[(0, 2), (1, 2)]).unwrap();
        assert_eq!(o.preq_mask(2), 0b111);
        assert_eq!(o.preq_mask(0), 0b001);
        assert!(!o.is_empty());
    }

    #[test]
    fn empty_and_total_flags() {
        assert!(TimingOrder::empty(5).is_empty());
        assert!(!TimingOrder::empty(2).is_total());
        assert!(TimingOrder::new(1, &[]).unwrap().is_total());
    }

    #[test]
    fn running_example_order() {
        let q = QueryGraph::running_example();
        // 6 ≺ 3 ≺ 1  (indices 5 ≺ 2 ≺ 0)
        assert!(q.order.lt(5, 2));
        assert!(q.order.lt(2, 0));
        assert!(q.order.lt(5, 0)); // transitivity
                                   // 6 ≺ 5 ≺ 4 (indices 5 ≺ 4 ≺ 3)
        assert!(q.order.lt(5, 4));
        assert!(q.order.lt(4, 3));
        assert!(q.order.lt(5, 3));
        // unrelated pairs
        assert!(!q.order.lt(0, 1));
        assert!(!q.order.lt(1, 0));
    }

    #[test]
    fn connectivity_checks() {
        let q = QueryGraph::running_example();
        let all = (1u64 << 6) - 1;
        assert!(q.edge_set_connected(all));
        // Q1 = {ε6, ε5, ε4} = indices {5,4,3}: connected.
        assert!(q.edge_set_connected(0b111000));
        // Preq(ε1) = {ε6, ε3, ε1} = indices {5,2,0}: ε6=e→f is NOT adjacent
        // to a→b / d→b, so disconnected (Figure 6a shows it disconnected).
        assert!(!q.edge_set_connected(0b100101));
        // Singleton / empty masks are connected.
        assert!(q.edge_set_connected(0));
        assert!(q.edge_set_connected(0b1000));
    }

    #[test]
    fn disconnected_query_rejected() {
        let labels = vec![VLabel(0); 4];
        let edges = vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 2, dst: 3, label: ELabel::NONE },
        ];
        assert_eq!(QueryGraph::new(labels, edges, &[]).unwrap_err(), QueryError::Disconnected);
    }

    #[test]
    fn dangling_vertex_rejected() {
        let labels = vec![VLabel(0)];
        let edges = vec![QueryEdge { src: 0, dst: 1, label: ELabel::NONE }];
        assert!(matches!(
            QueryGraph::new(labels, edges, &[]).unwrap_err(),
            QueryError::DanglingVertex { .. }
        ));
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(QueryGraph::new(vec![], vec![], &[]).unwrap_err(), QueryError::Empty);
    }

    #[test]
    fn diameter_of_path() {
        assert_eq!(path_query(1).diameter(), 1);
        assert_eq!(path_query(5).diameter(), 5);
        assert_eq!(QueryGraph::running_example().diameter(), 4);
    }

    #[test]
    fn vertices_of_mask() {
        let q = QueryGraph::running_example();
        let mut vs = q.vertices_of(0b111000); // Q1 = {ε4,ε5,ε6}
        vs.sort_unstable();
        assert_eq!(vs, vec![2, 3, 4, 5]); // c, d, e, f
    }

    #[test]
    fn signature_uses_vertex_labels() {
        let q = QueryGraph::running_example();
        let (s, d, l) = q.signature(1); // ε2: b→c
        assert_eq!(s, VLabel(1));
        assert_eq!(d, VLabel(2));
        assert_eq!(l, ELabel::NONE);
    }
}
