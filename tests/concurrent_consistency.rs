#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! Streaming consistency (Definition 11): the concurrent engine — any
//! thread count, either locking mode — must produce exactly the serial
//! engine's results and final state on realistic generated workloads.

use tcs_concurrent::{ConcurrentEngine, LockingMode};
use tcs_core::{MsTreeStore, PlanOptions, QueryPlan, TimingEngine};
use tcs_graph::gen::{Dataset, QueryGen, TimingMode};
use tcs_graph::window::SlidingWindow;
use tcs_graph::{MatchRecord, QueryGraph, StreamEdge};

fn serial_run(q: &QueryGraph, stream: &[StreamEdge], window: u64) -> (Vec<MatchRecord>, usize) {
    let mut eng: TimingEngine<MsTreeStore> =
        TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
    let mut w = SlidingWindow::new(window);
    let mut out = Vec::new();
    for &e in stream {
        out.extend(eng.advance(&w.advance(e)));
    }
    out.sort();
    (out, eng.live_match_count())
}

fn check(q: &QueryGraph, stream: &[StreamEdge], window: u64, label: &str) {
    let (expected, live) = serial_run(q, stream, window);
    for threads in [1usize, 2, 4] {
        for mode in [LockingMode::FineGrained, LockingMode::AllLocks] {
            let plan = QueryPlan::build(q.clone(), PlanOptions::timing());
            let mut eng = ConcurrentEngine::new(plan, threads, mode);
            let mut got = eng.run(stream, window).matches;
            got.sort();
            assert_eq!(got, expected, "{label} threads={threads} mode={mode:?}");
            assert_eq!(
                eng.live_match_count(),
                live,
                "{label} final state, threads={threads} mode={mode:?}"
            );
        }
    }
}

#[test]
fn consistency_on_every_dataset() {
    for dataset in Dataset::ALL {
        let stream = dataset.generate(600, 31);
        let gen = QueryGen::new(&stream, 300);
        for mode in [TimingMode::Random, TimingMode::Empty, TimingMode::Full] {
            for q in gen.generate_many(3, mode, 1, 9) {
                check(&q, &stream, 200, dataset.name());
            }
        }
    }
}

#[test]
fn consistency_under_heavy_expiry() {
    // A tiny window forces constant deletion transactions interleaving
    // with insertions — the partial-removal protocol's stress case.
    let stream = Dataset::WikiTalk.generate(800, 55);
    let gen = QueryGen::new(&stream, 300);
    for q in gen.generate_many(3, TimingMode::Random, 2, 77) {
        check(&q, &stream, 25, "tiny-window");
    }
}

#[test]
fn consistency_with_multi_position_edges() {
    // Queries whose edges share signatures (single label) make one arrival
    // match several query edges — several lock groups per transaction.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use tcs_graph::query::QueryEdge;
    use tcs_graph::{ELabel, VLabel};
    let mut rng = SmallRng::seed_from_u64(5);
    let stream: Vec<StreamEdge> = (0..500)
        .map(|i| {
            let src = rng.gen_range(0..10u32);
            let mut dst = rng.gen_range(0..10u32);
            while dst == src {
                dst = rng.gen_range(0..10u32);
            }
            StreamEdge::new(i, src, 0, dst, 0, 0, i + 1)
        })
        .collect();
    let q = QueryGraph::new(
        vec![VLabel(0); 4],
        vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            QueryEdge { src: 2, dst: 3, label: ELabel::NONE },
        ],
        &[(0, 2)],
    )
    .unwrap();
    check(&q, &stream, 60, "uniform-labels");
}
