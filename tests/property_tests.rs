#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! Property-based tests (proptest) over the core invariants:
//! timing-order closure laws, decomposition partition/validity, join-order
//! prefix-connectivity, store equivalence under random operation
//! sequences, and engine-vs-oracle equivalence on small random instances.

use proptest::prelude::*;
use tcs_core::decompose::{decompose, is_timing_sequence, tc_subqueries};
use tcs_core::joinorder::{is_prefix_connected, order_by_joint_number};
use tcs_core::plan::{PlanOptions, QueryPlan};
use tcs_core::{IndependentStore, MsTreeStore, TimingEngine};
use tcs_graph::query::QueryEdge;
use tcs_graph::window::SlidingWindow;
use tcs_graph::{ELabel, QueryGraph, StreamEdge, VLabel};
use tcs_subiso::SnapshotOracle;

/// A connected random query: a random tree over `n_v` vertices plus a few
/// extra edges, random labels, and a random (acyclic by construction)
/// timing order.
fn arb_query() -> impl Strategy<Value = QueryGraph> {
    (2usize..6, 0usize..3, any::<u64>()).prop_map(|(n_v, extra, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let labels: Vec<VLabel> = (0..n_v).map(|_| VLabel(rng.gen_range(0..3))).collect();
        let mut edges = Vec::new();
        for v in 1..n_v {
            let u = rng.gen_range(0..v);
            if rng.gen_bool(0.5) {
                edges.push(QueryEdge { src: u, dst: v, label: ELabel::NONE });
            } else {
                edges.push(QueryEdge { src: v, dst: u, label: ELabel::NONE });
            }
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..n_v);
            let b = rng.gen_range(0..n_v);
            edges.push(QueryEdge { src: a, dst: b, label: ELabel::NONE });
        }
        // Random DAG order: only pairs (i, j) with i < j, sampled sparsely.
        let mut pairs = Vec::new();
        for i in 0..edges.len() {
            for j in i + 1..edges.len() {
                if rng.gen_bool(0.3) {
                    pairs.push((i, j));
                }
            }
        }
        QueryGraph::new(labels, edges, &pairs).expect("construction is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_is_transitive_and_irreflexive(q in arb_query()) {
        let o = &q.order;
        let n = q.n_edges();
        for i in 0..n {
            prop_assert!(!o.lt(i, i), "irreflexive");
            for j in 0..n {
                for k in 0..n {
                    if o.lt(i, j) && o.lt(j, k) {
                        prop_assert!(o.lt(i, k), "transitive ({i},{j},{k})");
                    }
                }
                if o.lt(i, j) {
                    prop_assert!(!o.lt(j, i), "antisymmetric ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn decomposition_is_a_partition_of_tc_subqueries(q in arb_query()) {
        let d = decompose(&q);
        prop_assert!(d.is_partition_of(&q));
        for s in &d.subqueries {
            prop_assert!(is_timing_sequence(&q, &s.seq), "{:?}", s.seq);
        }
    }

    #[test]
    fn every_tcsub_member_is_valid(q in arb_query()) {
        for s in tc_subqueries(&q) {
            prop_assert!(is_timing_sequence(&q, &s.seq));
            prop_assert_eq!(
                s.seq.iter().map(|&e| 1u64 << e).sum::<u64>(),
                s.mask
            );
        }
    }

    #[test]
    fn join_orders_are_prefix_connected(q in arb_query(), seed in any::<u64>()) {
        let d = decompose(&q);
        let ordered = order_by_joint_number(&q, &d);
        prop_assert!(is_prefix_connected(&q, &ordered));
        let random = tcs_core::joinorder::order_randomly(&q, &d, seed);
        prop_assert!(is_prefix_connected(&q, &random));
        prop_assert_eq!(ordered.len(), d.k());
    }

    #[test]
    fn plan_positions_are_a_bijection(q in arb_query()) {
        let plan = QueryPlan::build(q.clone(), PlanOptions::timing());
        let mut seen = vec![false; q.n_edges()];
        for (e, seen_e) in seen.iter_mut().enumerate() {
            let (s, l) = plan.pos[e];
            prop_assert_eq!(plan.subs[s].seq[l], e);
            prop_assert!(!*seen_e);
            *seen_e = true;
        }
    }
}

/// Fails the running case with the full formatted violation list when a
/// [`tcs_core::store::StoreAudit`] sweep reports anything.
fn assert_audit_clean(violations: &[tcs_core::store::AuditViolation], store: &str, tick: u64) {
    prop_assert!(
        violations.is_empty(),
        "{store} store audit failed at tick {tick}:\n{}",
        tcs_core::store::format_violations(violations)
    );
}

/// Random small streams for engine-vs-oracle properties.
fn arb_stream() -> impl Strategy<Value = Vec<StreamEdge>> {
    (20usize..80, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let src = rng.gen_range(0..5u32);
                let mut dst = rng.gen_range(0..5u32);
                while dst == src {
                    dst = rng.gen_range(0..5u32);
                }
                StreamEdge::new(
                    i as u64,
                    src,
                    (src % 3) as u16,
                    dst,
                    (dst % 3) as u16,
                    0,
                    i as u64 + 1,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_equals_oracle_on_random_instances(
        stream in arb_stream(),
        q in arb_query(),
        window in 10u64..40,
    ) {
        // Relabel query vertices into the stream's label space (0..3) is
        // already guaranteed by arb_query; run both and compare per tick.
        let mut oracle = SnapshotOracle::new(q.clone());
        let mut ms: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut ind: TimingEngine<IndependentStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut w0 = SlidingWindow::new(window);
        let mut w1 = SlidingWindow::new(window);
        let mut w2 = SlidingWindow::new(window);
        for &e in &stream {
            let expected = oracle.advance(&w0.advance(e));
            let mut a = ms.advance(&w1.advance(e));
            a.sort();
            let mut b = ind.advance(&w2.advance(e));
            b.sort();
            prop_assert_eq!(&a, &expected, "mstree tick {}", e.ts);
            prop_assert_eq!(&b, &expected, "independent tick {}", e.ts);
            assert_audit_clean(&ms.audit(), "mstree", e.ts.0);
            assert_audit_clean(&ind.audit(), "independent", e.ts.0);
        }
        // Final live counts agree too.
        prop_assert_eq!(ms.live_match_count(), ind.live_match_count());
        prop_assert_eq!(ms.live_match_count(), oracle.all_matches().len());
    }

    #[test]
    fn emitted_matches_always_verify(stream in arb_stream(), q in arb_query()) {
        // Whatever the engine emits must satisfy Definition 4 — checked
        // against an independently maintained snapshot.
        use tcs_graph::snapshot::Snapshot;
        let mut eng: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut w = SlidingWindow::new(30);
        let mut snap = Snapshot::new();
        for &e in &stream {
            let ev = w.advance(e);
            for x in &ev.expired {
                snap.remove(x.id);
            }
            snap.insert(ev.arrival);
            for m in eng.advance(&ev) {
                prop_assert_eq!(m.verify(&q, |id| snap.edge(id)), Ok(()));
            }
        }
    }
}

/// Random hub-heavy streams: endpoints drawn from a Zipf distribution so
/// a few hub vertices concentrate most edges — the workload where the
/// hash-indexed expansion lists matter (one hot bucket per hub) and where
/// an index-coherence bug would surface as a wrong match stream.
fn arb_zipf_stream() -> impl Strategy<Value = Vec<StreamEdge>> {
    (40usize..100, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use tcs_graph::gen::Zipf;
        let mut rng = SmallRng::seed_from_u64(seed);
        let zipf = Zipf::new(12, 1.4);
        (0..n)
            .map(|i| {
                let src = zipf.sample(&mut rng) as u32;
                let mut dst = zipf.sample(&mut rng) as u32;
                while dst == src {
                    dst = rng.gen_range(0..12u32);
                }
                StreamEdge::new(
                    i as u64,
                    src,
                    (src % 3) as u16,
                    dst,
                    (dst % 3) as u16,
                    0,
                    i as u64 + 1,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant of the join-key indexes: the indexed
    /// (probing) engine emits the exact same match stream as the naive
    /// subiso oracle on hub-heavy Zipf streams, tick by tick, and its
    /// counters are identical to the full-scan reference path — the index
    /// must be semantically invisible.
    #[test]
    fn indexed_engine_equals_oracle_on_zipf_streams(
        stream in arb_zipf_stream(),
        q in arb_query(),
        window in 10u64..50,
    ) {
        use tcs_core::engine::JoinMode;
        let mut oracle = SnapshotOracle::new(q.clone());
        let mut probe: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut scan: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        scan.set_join_mode(JoinMode::Scan);
        let mut ind: TimingEngine<IndependentStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut w0 = SlidingWindow::new(window);
        let mut w1 = SlidingWindow::new(window);
        let mut w2 = SlidingWindow::new(window);
        let mut w3 = SlidingWindow::new(window);
        for &e in &stream {
            let expected = oracle.advance(&w0.advance(e));
            let mut got = probe.advance(&w1.advance(e));
            got.sort();
            prop_assert_eq!(&got, &expected, "probe vs oracle at tick {}", e.ts);
            let mut ref_scan = scan.advance(&w2.advance(e));
            ref_scan.sort();
            prop_assert_eq!(&got, &ref_scan, "probe vs scan at tick {}", e.ts);
            let mut ind_got = ind.advance(&w3.advance(e));
            ind_got.sort();
            prop_assert_eq!(&ind_got, &expected, "independent probe vs oracle at tick {}", e.ts);
            assert_audit_clean(&probe.audit(), "mstree(probe)", e.ts.0);
            assert_audit_clean(&scan.audit(), "mstree(scan)", e.ts.0);
            assert_audit_clean(&ind.audit(), "independent", e.ts.0);
        }
        prop_assert_eq!(probe.stats(), scan.stats(), "probe and scan counters diverged");
        prop_assert_eq!(probe.live_match_count(), oracle.all_matches().len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MS-tree and the independent store must stay observationally
    /// equivalent under arbitrary interleavings of inserts and expiries
    /// driven through the engine.
    #[test]
    fn stores_stay_equivalent_under_random_ops(
        stream in arb_stream(),
        q in arb_query(),
        window in 5u64..25,
    ) {
        let mut ms: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut ind: TimingEngine<IndependentStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut w1 = SlidingWindow::new(window);
        let mut w2 = SlidingWindow::new(window);
        for &e in &stream {
            let mut a = ms.advance(&w1.advance(e));
            a.sort();
            let mut b = ind.advance(&w2.advance(e));
            b.sort();
            prop_assert_eq!(a, b);
            prop_assert_eq!(ms.live_match_count(), ind.live_match_count());
            assert_audit_clean(&ms.audit(), "mstree", e.ts.0);
            assert_audit_clean(&ind.audit(), "independent", e.ts.0);
        }
    }

    /// The concurrent tree passes the same invariant sweep at every
    /// quiescent point: run the fine-grained engine over random streams
    /// in several batches and audit between batches (all workers joined,
    /// all partial removals reclaimed).
    #[test]
    fn concurrent_tree_audit_is_clean_at_quiescence(
        stream in arb_stream(),
        q in arb_query(),
        window in 5u64..25,
    ) {
        use tcs_concurrent::engine::{ConcurrentEngine, LockingMode};
        let mut eng = ConcurrentEngine::new(
            QueryPlan::build(q, PlanOptions::timing()),
            2,
            LockingMode::FineGrained,
        );
        for chunk in stream.chunks(stream.len().div_ceil(3).max(1)) {
            eng.run(chunk, window);
            assert_audit_clean(&eng.audit(), "cms-tree", 0);
        }
    }

    /// Timing-order semantics: with a FULL chain over a 2-edge path query,
    /// reversing edge arrival order kills the match; structure-only keeps
    /// it.
    #[test]
    fn chain_order_is_enforced(t1 in 1u64..50, gap in 1u64..50) {
        let q_chain = QueryGraph::new(
            vec![VLabel(0), VLabel(1), VLabel(2)],
            vec![
                QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
                QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            ],
            &[(0, 1)],
        )
        .unwrap();
        let t2 = t1 + gap;
        // ε1-shaped first, ε0-shaped second.
        let e_b = StreamEdge::new(1, 11, 1, 12, 2, 0, t1);
        let e_a = StreamEdge::new(2, 10, 0, 11, 1, 0, t2);
        let mut eng: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q_chain.clone(), PlanOptions::timing()));
        let mut w = SlidingWindow::new(1_000);
        let m1 = eng.advance(&w.advance(e_b));
        let m2 = eng.advance(&w.advance(e_a));
        prop_assert!(m1.is_empty() && m2.is_empty(), "order violated ⇒ no match");

        let q_free = QueryGraph::new(
            q_chain.vertex_labels.clone(),
            q_chain.edges.clone(),
            &[],
        )
        .unwrap();
        let mut eng2: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q_free, PlanOptions::timing()));
        let mut w2 = SlidingWindow::new(1_000);
        let n1 = eng2.advance(&w2.advance(e_b));
        let n2 = eng2.advance(&w2.advance(e_a));
        prop_assert_eq!(n1.len() + n2.len(), 1, "structure-only finds it");
    }
}
