#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! The multi-query subsystem's defining guarantee, test-enforced: a
//! [`MultiQueryEngine`] with N registered plans emits, per query, exactly
//! the match stream of N independent [`TimingEngine`]s consuming the same
//! edge sequence — through signature-routed dispatch, broadcast mode, the
//! sharded front-end, window expiry, and mid-stream register/unregister
//! churn (a query registered at stream position `p` behaves like an
//! independent engine that starts consuming at `p`).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tcs_core::plan::{PlanOptions, QueryPlan};
use tcs_core::{MsTreeStore, TimingEngine};
use tcs_graph::query::QueryEdge;
use tcs_graph::window::SlidingWindow;
use tcs_graph::{ELabel, MatchRecord, QueryGraph, StreamEdge, VLabel};
use tcs_multi::{DispatchMode, MultiQueryEngine, QueryId, ShardedMultiEngine, ShareMode};

/// A small connected random query over `n_labels` vertex labels: a random
/// tree plus optional extra edges and a sparse random timing DAG (the
/// same recipe as `tests/property_tests.rs`).
fn random_query(rng: &mut SmallRng, n_labels: u16) -> QueryGraph {
    let n_v = rng.gen_range(2..4usize);
    let labels: Vec<VLabel> = (0..n_v).map(|_| VLabel(rng.gen_range(0..n_labels))).collect();
    let mut edges = Vec::new();
    for v in 1..n_v {
        let u = rng.gen_range(0..v);
        if rng.gen_bool(0.5) {
            edges.push(QueryEdge { src: u, dst: v, label: ELabel::NONE });
        } else {
            edges.push(QueryEdge { src: v, dst: u, label: ELabel::NONE });
        }
    }
    if rng.gen_bool(0.4) {
        let a = rng.gen_range(0..n_v);
        let b = rng.gen_range(0..n_v);
        edges.push(QueryEdge { src: a, dst: b, label: ELabel::NONE });
    }
    let mut pairs = Vec::new();
    for i in 0..edges.len() {
        for j in i + 1..edges.len() {
            if rng.gen_bool(0.4) {
                pairs.push((i, j));
            }
        }
    }
    QueryGraph::new(labels, edges, &pairs).expect("construction is valid")
}

/// A random edge stream over `n_labels` labels with strictly increasing
/// timestamps and occasional jumps that force multi-edge expiry cascades.
fn random_stream(rng: &mut SmallRng, len: usize, n_labels: u16, window: u64) -> Vec<StreamEdge> {
    let mut ts = 0u64;
    (0..len)
        .map(|i| {
            ts += if rng.gen_bool(0.05) { window / 3 + 1 } else { 1 };
            let src = rng.gen_range(0..8u32);
            let mut dst = rng.gen_range(0..8u32);
            while dst == src {
                dst = rng.gen_range(0..8u32);
            }
            StreamEdge::new(
                i as u64 + 1,
                src,
                (src % n_labels as u32) as u16,
                dst,
                (dst % n_labels as u32) as u16,
                0,
                ts,
            )
        })
        .collect()
}

/// One registration episode of a query: active for arrivals
/// `start..end` of the stream.
struct Episode {
    query: QueryGraph,
    start: usize,
    end: usize,
}

/// The per-episode reference: an independent engine consuming exactly the
/// episode's arrival range through its own fresh window.
fn independent_run(ep: &Episode, stream: &[StreamEdge], window: u64) -> Vec<MatchRecord> {
    let mut eng: TimingEngine<MsTreeStore> =
        TimingEngine::new(QueryPlan::build(ep.query.clone(), PlanOptions::timing()));
    let mut w = SlidingWindow::new(window);
    let mut out = Vec::new();
    for e in &stream[ep.start..ep.end] {
        out.extend(eng.advance(&w.advance(*e)));
    }
    out
}

/// Drives a `MultiQueryEngine` through the stream with the episode
/// schedule and returns each episode's emitted match stream in order.
fn multi_run(
    episodes: &[Episode],
    stream: &[StreamEdge],
    window: u64,
    mode: DispatchMode,
    share: ShareMode,
) -> (Vec<Vec<MatchRecord>>, MultiQueryEngine<MsTreeStore>, Vec<Option<QueryId>>) {
    let mut multi: MultiQueryEngine<MsTreeStore> = MultiQueryEngine::with_mode(window, mode);
    multi.set_share_mode(share);
    let mut ids: Vec<Option<QueryId>> = vec![None; episodes.len()];
    let mut out: Vec<Vec<MatchRecord>> = (0..episodes.len()).map(|_| Vec::new()).collect();
    for (i, e) in stream.iter().enumerate() {
        for (ei, ep) in episodes.iter().enumerate() {
            if ep.end == i {
                assert!(multi.unregister(ids[ei].expect("episode was registered")));
            }
        }
        for (ei, ep) in episodes.iter().enumerate() {
            if ep.start == i {
                ids[ei] =
                    Some(multi.register(QueryPlan::build(ep.query.clone(), PlanOptions::timing())));
            }
        }
        for (qid, m) in multi.advance(*e) {
            let ei = ids.iter().position(|&x| x == Some(qid)).expect("emitting query is live");
            out[ei].push(m);
        }
    }
    (out, multi, ids)
}

fn check_schedule(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let window = 60u64;
    let n_labels = 3u16;
    let stream = random_stream(&mut rng, 220, n_labels, window);
    let n_queries = rng.gen_range(1..5usize);
    let mut episodes = Vec::new();
    for _ in 0..n_queries {
        let query = random_query(&mut rng, n_labels);
        let start = rng.gen_range(0..stream.len() / 2);
        let end =
            if rng.gen_bool(0.5) { rng.gen_range(start + 1..=stream.len()) } else { stream.len() };
        // Half the unregistered queries come back later under a fresh id
        // — same query graph, new registration, new reference engine.
        if end < stream.len() && rng.gen_bool(0.5) {
            let restart = rng.gen_range(end..stream.len());
            episodes.push(Episode { query: query.clone(), start: restart, end: stream.len() });
        }
        episodes.push(Episode { query, start, end });
    }
    let (shr_out, shr_multi, shr_ids) =
        multi_run(&episodes, &stream, window, DispatchMode::Signature, ShareMode::Shared);
    let (prv_out, prv_multi, prv_ids) =
        multi_run(&episodes, &stream, window, DispatchMode::Signature, ShareMode::Private);
    let (bc_out, bc_multi, bc_ids) =
        multi_run(&episodes, &stream, window, DispatchMode::Broadcast, ShareMode::Shared);
    for (ei, ep) in episodes.iter().enumerate() {
        let want = independent_run(ep, &stream, window);
        assert_eq!(shr_out[ei], want, "seed {seed} episode {ei} (signature, shared)");
        assert_eq!(prv_out[ei], want, "seed {seed} episode {ei} (signature, private)");
        assert_eq!(bc_out[ei], want, "seed {seed} episode {ei} (broadcast)");
        // Episodes alive at stream end also agree on normalized stats
        // with their independent reference. Under sharing a late joiner
        // runs on a warm engine, so the internal work counters
        // (partials, joins) legitimately differ — the emission-visible
        // ones must not.
        if ep.end == stream.len() {
            let mut reference: TimingEngine<MsTreeStore> =
                TimingEngine::new(QueryPlan::build(ep.query.clone(), PlanOptions::timing()));
            let mut w = SlidingWindow::new(window);
            for e in &stream[ep.start..] {
                reference.advance(&w.advance(*e));
            }
            let prv_stats = prv_multi.stats_of(prv_ids[ei].unwrap()).unwrap();
            let bc_stats = bc_multi.stats_of(bc_ids[ei].unwrap()).unwrap();
            assert_eq!(prv_stats, reference.stats(), "seed {seed} episode {ei} stats (private)");
            assert_eq!(bc_stats, reference.stats(), "seed {seed} episode {ei} stats (broadcast)");
            let shr_stats = shr_multi.stats_of(shr_ids[ei].unwrap()).unwrap();
            assert_eq!(
                shr_stats.matches_emitted,
                reference.stats().matches_emitted,
                "seed {seed} episode {ei} emissions (shared)"
            );
            assert_eq!(
                shr_stats.edges_processed,
                reference.stats().edges_processed,
                "seed {seed} episode {ei} processed (shared)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// N random plans under random register/unregister schedules: every
    /// episode's match stream and end-of-stream stats equal an
    /// independent engine consuming the same arrival range, in both
    /// dispatch modes.
    #[test]
    fn registry_equals_independent_engines_under_churn(seed in any::<u64>()) {
        check_schedule(seed);
    }
}

/// The acceptance bar: 64 registered queries, one stream, per-query
/// match streams identical to 64 independent engines — for the serial
/// registry in both dispatch modes AND the sharded front-end — plus the
/// shared-window space win the subsystem exists for.
#[test]
fn sixty_four_queries_match_sixty_four_independent_engines() {
    let mut rng = SmallRng::seed_from_u64(0x64);
    let window = 80u64;
    let n_labels = 4u16;
    let stream = random_stream(&mut rng, 700, n_labels, window);
    let queries: Vec<QueryGraph> = (0..64).map(|_| random_query(&mut rng, n_labels)).collect();

    // 64 independent engines, each with its own window copy.
    let mut independent: Vec<(TimingEngine<MsTreeStore>, SlidingWindow, Vec<MatchRecord>)> =
        queries
            .iter()
            .map(|q| {
                (
                    TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing())),
                    SlidingWindow::new(window),
                    Vec::new(),
                )
            })
            .collect();
    for e in &stream {
        for (eng, w, out) in independent.iter_mut() {
            out.extend(eng.advance(&w.advance(*e)));
        }
    }

    // The serial registry, both modes.
    for mode in [DispatchMode::Signature, DispatchMode::Broadcast] {
        let mut multi: MultiQueryEngine<MsTreeStore> = MultiQueryEngine::with_mode(window, mode);
        let ids: Vec<QueryId> = queries
            .iter()
            .map(|q| multi.register(QueryPlan::build(q.clone(), PlanOptions::timing())))
            .collect();
        let mut per_query: Vec<Vec<MatchRecord>> = vec![Vec::new(); 64];
        for e in &stream {
            for (qid, m) in multi.advance(*e) {
                per_query[ids.iter().position(|&x| x == qid).unwrap()].push(m);
            }
        }
        for (i, (eng, _, want)) in independent.iter().enumerate() {
            assert_eq!(&per_query[i], want, "query {i} stream ({mode:?})");
            assert_eq!(multi.stats_of(ids[i]).unwrap(), eng.stats(), "query {i} stats ({mode:?})");
        }
        if mode == DispatchMode::Signature {
            // The shared snapshot is counted once: the registry holds
            // strictly less than 64 engines each paying for a window
            // copy (= broadcast-mode accounting).
            let shared = multi.stats();
            let private: usize = independent.iter().map(|(eng, _, _)| eng.space_bytes()).sum();
            assert!(shared.queries.iter().all(|q| q.stats.edges_processed == stream.len() as u64));
            assert!(
                shared.space_bytes() < private,
                "shared {} !< private {private}",
                shared.space_bytes()
            );
        }
    }

    // The sharded front-end on 4 workers.
    let mut sharded: ShardedMultiEngine<MsTreeStore> = ShardedMultiEngine::new(window, 4);
    let ids: Vec<QueryId> = queries
        .iter()
        .map(|q| sharded.register(QueryPlan::build(q.clone(), PlanOptions::timing())))
        .collect();
    let mut per_query: Vec<Vec<MatchRecord>> = vec![Vec::new(); 64];
    for (qid, m) in sharded.process(&stream) {
        per_query[ids.iter().position(|&x| x == qid).unwrap()].push(m);
    }
    for (i, (_, _, want)) in independent.iter().enumerate() {
        assert_eq!(&per_query[i], want, "query {i} stream (sharded)");
    }
}
