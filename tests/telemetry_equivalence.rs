#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! The telemetry seam's defining guarantee, test-enforced: arming a
//! [`Recorder`] — at exact sampling or the default serving cadence —
//! never changes observable behavior. Match streams and the
//! oracle-comparable `EngineStats` counters are byte-identical with the
//! recorder on vs off, across join modes, batch-ingestion modes,
//! dispatch × share modes under register/unregister churn, and the
//! sharded front-end.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use tcs_core::plan::{PlanOptions, QueryPlan};
use tcs_core::{BatchMode, JoinMode, MsTreeStore, TimingEngine};
use tcs_graph::query::QueryEdge;
use tcs_graph::window::SlidingWindow;
use tcs_graph::{ELabel, MatchRecord, QueryGraph, StreamEdge, VLabel};
use tcs_multi::{DispatchMode, MultiQueryEngine, QueryId, ShardedMultiEngine, ShareMode};
use tcs_telemetry::Recorder;

/// A small connected random query (the `tests/multi_equivalence.rs`
/// recipe).
fn random_query(rng: &mut SmallRng, n_labels: u16) -> QueryGraph {
    let n_v = rng.gen_range(2..4usize);
    let labels: Vec<VLabel> = (0..n_v).map(|_| VLabel(rng.gen_range(0..n_labels))).collect();
    let mut edges = Vec::new();
    for v in 1..n_v {
        let u = rng.gen_range(0..v);
        if rng.gen_bool(0.5) {
            edges.push(QueryEdge { src: u, dst: v, label: ELabel::NONE });
        } else {
            edges.push(QueryEdge { src: v, dst: u, label: ELabel::NONE });
        }
    }
    if rng.gen_bool(0.4) {
        let a = rng.gen_range(0..n_v);
        let b = rng.gen_range(0..n_v);
        edges.push(QueryEdge { src: a, dst: b, label: ELabel::NONE });
    }
    let mut pairs = Vec::new();
    for i in 0..edges.len() {
        for j in i + 1..edges.len() {
            if rng.gen_bool(0.4) {
                pairs.push((i, j));
            }
        }
    }
    QueryGraph::new(labels, edges, &pairs).expect("construction is valid")
}

/// A random edge stream with strictly increasing timestamps and
/// occasional jumps that force multi-edge expiry cascades.
fn random_stream(rng: &mut SmallRng, len: usize, n_labels: u16, window: u64) -> Vec<StreamEdge> {
    let mut ts = 0u64;
    (0..len)
        .map(|i| {
            ts += if rng.gen_bool(0.05) { window / 3 + 1 } else { 1 };
            let src = rng.gen_range(0..8u32);
            let mut dst = rng.gen_range(0..8u32);
            while dst == src {
                dst = rng.gen_range(0..8u32);
            }
            StreamEdge::new(
                i as u64 + 1,
                src,
                (src % n_labels as u32) as u16,
                dst,
                (dst % n_labels as u32) as u16,
                0,
                ts,
            )
        })
        .collect()
}

/// The two recorder configurations behavior must be invariant under:
/// exact stamping (maximum instrumentation) and the default 1-in-16
/// serving cadence.
fn recorders() -> [Arc<Recorder>; 2] {
    [Arc::new(Recorder::with_sampling(1)), Arc::new(Recorder::new())]
}

fn check_timing_engine(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let window = 60u64;
    let query = random_query(&mut rng, 3);
    let stream = random_stream(&mut rng, 160, 3, window);
    let plan = || QueryPlan::build(query.clone(), PlanOptions::timing());

    // Windowed per-edge path, every join mode.
    for mode in [JoinMode::Probe, JoinMode::ProbeAll, JoinMode::Scan] {
        for rec in recorders() {
            let mut off: TimingEngine<MsTreeStore> = TimingEngine::new(plan());
            let mut on: TimingEngine<MsTreeStore> = TimingEngine::new(plan());
            off.set_join_mode(mode);
            on.set_join_mode(mode);
            on.set_recorder(Arc::clone(&rec));
            let mut w_off = SlidingWindow::new(window);
            let mut w_on = SlidingWindow::new(window);
            for e in &stream {
                let a = off.advance(&w_off.advance(*e));
                let b = on.advance(&w_on.advance(*e));
                assert_eq!(a, b, "seed {seed} mode {mode:?} edge {}", e.id.0);
            }
            assert_eq!(off.stats(), on.stats(), "seed {seed} mode {mode:?} stats");
        }
    }

    // Batch-ingestion path, both modes, random chunking.
    for mode in [BatchMode::Sorted, BatchMode::PerEdge] {
        for rec in recorders() {
            let mut off: TimingEngine<MsTreeStore> = TimingEngine::new(plan());
            let mut on: TimingEngine<MsTreeStore> = TimingEngine::new(plan());
            off.set_batch_mode(mode);
            on.set_batch_mode(mode);
            on.set_recorder(Arc::clone(&rec));
            let mut chunk_rng = SmallRng::seed_from_u64(seed ^ 0xba7c);
            let mut i = 0usize;
            while i < stream.len() {
                let n = chunk_rng.gen_range(1..8usize).min(stream.len() - i);
                let batch = &stream[i..i + n];
                let a = off.insert_batch(batch).expect("stream batches are valid");
                let b = on.insert_batch(batch).expect("stream batches are valid");
                assert_eq!(a, b, "seed {seed} batch mode {mode:?} at {i}");
                i += n;
            }
            assert_eq!(off.stats(), on.stats(), "seed {seed} batch mode {mode:?} stats");
            assert_eq!(
                off.ingest_stats(),
                on.ingest_stats(),
                "seed {seed} batch mode {mode:?} ingest stats"
            );
        }
    }
}

fn check_multi_engine(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let window = 60u64;
    let n_labels = 3u16;
    let stream = random_stream(&mut rng, 200, n_labels, window);
    let n_queries = rng.gen_range(2..5usize);
    // Each query is live for a random arrival range (mid-stream churn).
    let episodes: Vec<(QueryGraph, usize, usize)> = (0..n_queries)
        .map(|_| {
            let q = random_query(&mut rng, n_labels);
            let start = rng.gen_range(0..stream.len() / 2);
            let end = if rng.gen_bool(0.5) {
                rng.gen_range(start + 1..=stream.len())
            } else {
                stream.len()
            };
            (q, start, end)
        })
        .collect();

    let run = |mode: DispatchMode,
               share: ShareMode,
               rec: Option<Arc<Recorder>>|
     -> (Vec<(usize, MatchRecord)>, Vec<Option<tcs_core::EngineStats>>) {
        let mut multi: MultiQueryEngine<MsTreeStore> = MultiQueryEngine::with_mode(window, mode);
        multi.set_share_mode(share);
        if let Some(rec) = rec {
            multi.set_recorder(rec);
        }
        let mut ids: Vec<Option<QueryId>> = vec![None; episodes.len()];
        let mut out = Vec::new();
        for (i, e) in stream.iter().enumerate() {
            for (ei, (_, _, end)) in episodes.iter().enumerate() {
                if *end == i {
                    assert!(multi.unregister(ids[ei].expect("episode was registered")));
                }
            }
            for (ei, (q, start, _)) in episodes.iter().enumerate() {
                if *start == i {
                    ids[ei] =
                        Some(multi.register(QueryPlan::build(q.clone(), PlanOptions::timing())));
                }
            }
            for (qid, m) in multi.advance(*e) {
                let ei = ids.iter().position(|&x| x == Some(qid)).expect("emitter is live");
                out.push((ei, m));
            }
        }
        let stats = ids.iter().map(|id| id.and_then(|q| multi.stats_of(q))).collect();
        (out, stats)
    };

    for mode in [DispatchMode::Signature, DispatchMode::Broadcast] {
        for share in [ShareMode::Shared, ShareMode::Private] {
            let (base_out, base_stats) = run(mode, share, None);
            for rec in recorders() {
                let (out, stats) = run(mode, share, Some(rec));
                assert_eq!(base_out, out, "seed {seed} {mode:?}/{share:?} match stream");
                assert_eq!(base_stats, stats, "seed {seed} {mode:?}/{share:?} stats");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A standalone engine emits byte-identical matches and stats with
    /// the recorder on vs off, across join and batch-ingestion modes.
    #[test]
    fn timing_engine_is_invariant_under_recording(seed in any::<u64>()) {
        check_timing_engine(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The registry emits byte-identical per-query streams and stats
    /// with the recorder on vs off, across dispatch × share modes under
    /// register/unregister churn.
    #[test]
    fn multi_engine_is_invariant_under_recording(seed in any::<u64>()) {
        check_multi_engine(seed);
    }
}

/// The sharded front-end: same per-query match streams and per-query
/// stats with a recorder fanned out over all shards vs none, and the
/// armed run actually observed the stack (histograms + shard gauges
/// are populated).
#[test]
fn sharded_front_end_is_invariant_under_recording() {
    let mut rng = SmallRng::seed_from_u64(0x7e1e);
    let window = 80u64;
    let n_labels = 4u16;
    let stream = random_stream(&mut rng, 600, n_labels, window);
    let queries: Vec<QueryGraph> = (0..16).map(|_| random_query(&mut rng, n_labels)).collect();

    let run = |rec: Option<Arc<Recorder>>| {
        let mut hub: ShardedMultiEngine<MsTreeStore> = ShardedMultiEngine::new(window, 4);
        if let Some(rec) = rec {
            hub.set_recorder(rec);
        }
        let ids: Vec<QueryId> = queries
            .iter()
            .map(|q| hub.register(QueryPlan::build(q.clone(), PlanOptions::timing())))
            .collect();
        let mut per_query: Vec<Vec<MatchRecord>> = vec![Vec::new(); queries.len()];
        for (qid, m) in hub.process(&stream) {
            per_query[ids.iter().position(|&x| x == qid).unwrap()].push(m);
        }
        let stats: Vec<_> = hub.stats().queries.iter().map(|q| q.stats).collect();
        (per_query, stats)
    };

    let (base_streams, base_stats) = run(None);
    let rec = Arc::new(Recorder::with_sampling(1));
    let (streams, stats) = run(Some(Arc::clone(&rec)));
    assert_eq!(base_streams, streams, "sharded per-query match streams");
    assert_eq!(base_stats, stats, "sharded per-query stats");

    let snap = rec.snapshot();
    assert!(snap.edge.count > 0, "per-edge histogram saw the stream");
    assert!(
        snap.detection_by_query.iter().any(|(_, h)| h.count > 0),
        "detection histograms saw matches"
    );
    assert_eq!(snap.shards.len(), 4, "every shard published load gauges");
    assert!(snap.shards.iter().map(|s| s.edges_routed).sum::<u64>() > 0);
    assert!(!snap.events.is_empty(), "register events were logged");
}
