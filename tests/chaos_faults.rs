//! Chaos suite for the fault-tolerance layer (`--features failpoints`).
//!
//! Every test here drives a *real* engine through *injected* faults — the
//! `tcs-core` failpoint sites compiled in by the `failpoints` feature —
//! and checks the blast radii promised by the failure model (tcs-multi
//! crate docs): a per-query panic quarantines exactly one query, a worker
//! panic costs one shard one batch, overload sheds boundedly and
//! countedly, and survivors stay **byte-identical** to independent oracle
//! engines fed the sanitized stream.
//!
//! The failpoint registry is process-global, so every test serializes on
//! [`chaos_lock`] and resets the registry before and after itself.

#![cfg(feature = "failpoints")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, MutexGuard, OnceLock};
use tcs_core::failpoints::{self, sites, Action};
use tcs_core::plan::{PlanOptions, QueryPlan};
use tcs_core::{MsTreeStore, TimingEngine};
use tcs_graph::query::QueryEdge;
use tcs_graph::window::SlidingWindow;
use tcs_graph::{ELabel, MatchRecord, QueryGraph, StreamEdge, Timestamp, VLabel};
use tcs_multi::{
    FaultPolicy, IngestError, MultiQueryEngine, OverloadPolicy, QueryId, ShardedMultiEngine,
};

/// Serializes chaos tests: the failpoint registry and panic hook are
/// process-global. Poisoning is survivable — a failed test must not
/// cascade into every later one.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn quiet() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(failpoints::install_quiet_hook);
}

/// Tenant `t`'s two-hop path query over its private label alphabet
/// `{3t, 3t+1, 3t+2}` — tenant edges route only to tenant queries, which
/// makes fault targeting deterministic.
fn tenant_query(t: u16) -> QueryGraph {
    QueryGraph::new(
        vec![VLabel(3 * t), VLabel(3 * t + 1), VLabel(3 * t + 2)],
        vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
        ],
        &[(0, 1)],
    )
    .unwrap()
}

fn plan(t: u16) -> QueryPlan {
    QueryPlan::build(tenant_query(t), PlanOptions::timing())
}

/// Round-robin tenant traffic: each round one edge for tenant
/// `r % n_tenants`, alternating the two hops of its path so every tenant
/// completes matches regularly. Vertex id spaces are disjoint by
/// construction.
fn tenant_stream(n_tenants: u16, rounds: u64) -> Vec<StreamEdge> {
    let mut out = Vec::new();
    for r in 0..rounds {
        let t = (r % n_tenants as u64) as u16;
        let ts = r + 1;
        if (r / n_tenants as u64).is_multiple_of(2) {
            out.push(StreamEdge::new(
                ts,
                1_000 + r as u32,
                3 * t,
                200 + t as u32,
                3 * t + 1,
                0,
                ts,
            ));
        } else {
            out.push(StreamEdge::new(
                ts,
                200 + t as u32,
                3 * t + 1,
                10_000 + r as u32,
                3 * t + 2,
                0,
                ts,
            ));
        }
    }
    out
}

/// The ISSUE's acceptance scenario: 4 shards, a panic injected into one
/// query's probe path. Exactly that query is quarantined; every other
/// query — including the victim's shard-mates — emits the same match
/// stream as a fault-free run.
#[test]
fn injected_panic_quarantines_only_the_faulting_query() {
    let _g = chaos_lock();
    quiet();
    failpoints::reset();

    let stream = tenant_stream(8, 320);
    let clean: Vec<(usize, MatchRecord)> = {
        let mut sharded: ShardedMultiEngine<MsTreeStore> = ShardedMultiEngine::new(25, 4);
        let ids: Vec<_> = (0..8u16).map(|t| sharded.register(plan(t))).collect();
        sharded
            .process(&stream)
            .into_iter()
            .map(|(q, m)| (ids.iter().position(|&x| x == q).unwrap(), m))
            .collect()
    };

    let mut sharded: ShardedMultiEngine<MsTreeStore> = ShardedMultiEngine::new(25, 4);
    let ids: Vec<_> = (0..8u16).map(|t| sharded.register(plan(t))).collect();
    let victim = ids[3];
    failpoints::arm(sites::PRE_PROBE, Some(victim.0), Action::Panic("failpoint: probe".into()));
    let out = sharded.process(&stream);
    failpoints::reset();

    // Exactly one quarantine, the right query, a readable payload.
    let faults = sharded.faults();
    assert_eq!(faults.len(), 1);
    assert_eq!(faults[0].qid, victim);
    assert_eq!(faults[0].payload, "failpoint: probe");
    let st = sharded.stats();
    assert_eq!(st.faults.len(), 1, "fault log is surfaced through stats()");
    assert!(st.queries.iter().all(|q| q.id != victim), "quarantined query left the registry");
    assert_eq!(sharded.n_queries(), 7);
    // No worker died for a *query* fault: the supervisor never restarted.
    assert!(st.shards.iter().all(|h| h.restarts == 0));

    // Survivors are byte-identical to the fault-free run.
    let mut got: Vec<(usize, MatchRecord)> = out
        .into_iter()
        .map(|(q, m)| (ids.iter().position(|&x| x == q).unwrap(), m))
        .filter(|(t, _)| ids[*t] != victim)
        .collect();
    let mut want: Vec<(usize, MatchRecord)> =
        clean.into_iter().filter(|(t, _)| ids[*t] != victim).collect();
    got.sort();
    want.sort();
    assert_eq!(got, want);
    assert!(!want.is_empty());
}

/// Registration after a quarantine: the freed capacity is reusable, the
/// dead id is not. A new query registered after a fault gets a fresh id,
/// receives traffic, and the quarantined id never re-enters dispatch.
#[test]
fn register_after_quarantine_serves_under_a_fresh_id() {
    let _g = chaos_lock();
    quiet();
    failpoints::reset();

    let stream = tenant_stream(2, 80);
    let (first, second) = stream.split_at(40);
    let mut sharded: ShardedMultiEngine<MsTreeStore> = ShardedMultiEngine::new(25, 2);
    let q0 = sharded.register(plan(0));
    let q1 = sharded.register(plan(1));
    failpoints::arm(sites::PRE_PROBE, Some(q1.0), Action::Panic("failpoint: q1".into()));
    sharded.process(first);
    failpoints::reset();
    assert_eq!(sharded.faults().len(), 1);
    assert_eq!(sharded.n_queries(), 1);

    // Same tenant re-registers (same plan, new identity).
    let q1b = sharded.register(plan(1));
    assert_ne!(q1b, q1, "query ids are never reused");
    let out = sharded.process(second);
    assert!(out.iter().any(|(q, _)| *q == q1b), "replacement query serves traffic");
    assert!(out.iter().any(|(q, _)| *q == q0), "bystander unaffected");
    assert!(out.iter().all(|(q, _)| *q != q1), "quarantined id stays dead");
}

/// A panic outside the per-query boundary (the worker-loop site) kills a
/// whole shard worker: the batch ends without its matches, the supervisor
/// rebuilds the shard, and the re-homed queries serve the next batch
/// under their original ids.
#[test]
fn worker_death_is_survived_and_restarted() {
    let _g = chaos_lock();
    quiet();
    failpoints::reset();

    let stream = tenant_stream(4, 160);
    let (first, second) = stream.split_at(80);
    let mut sharded: ShardedMultiEngine<MsTreeStore> = ShardedMultiEngine::new(25, 2);
    let ids: Vec<_> = (0..4u16).map(|t| sharded.register(plan(t))).collect();
    let dead_shard = sharded.shard_of(ids[0]).unwrap();
    failpoints::arm(
        sites::WORKER_LOOP,
        Some(dead_shard as u64),
        Action::Panic("failpoint: worker".into()),
    );
    let out = sharded.process(first);
    failpoints::reset();

    // The other shard's queries still answered within the same batch.
    let survivors: Vec<_> =
        ids.iter().filter(|q| sharded.shard_of(**q) == Some(1 - dead_shard)).collect();
    assert!(survivors.iter().any(|q| out.iter().any(|(oq, _)| oq == *q)));
    // The supervisor rebuilt the dead shard; nobody was quarantined (the
    // worker died, not a query) and the homing survived the rebuild.
    let st = sharded.stats();
    assert_eq!(st.shards[dead_shard].restarts, 1);
    assert!(sharded.faults().is_empty());
    assert_eq!(sharded.n_queries(), 4);
    for &q in &ids {
        assert_eq!(
            sharded.shard_of(q).unwrap(),
            if survivors.contains(&&q) { 1 - dead_shard } else { dead_shard }
        );
    }
    // Re-homed queries serve the next batch (fresh window, same ids).
    let out2 = sharded.process(second);
    for &q in &ids {
        assert!(out2.iter().any(|(oq, _)| *oq == q), "query {q:?} serves after restart");
    }
}

/// Overload with a deliberately slow worker: back-pressure stays
/// lossless; the shedding policies lose edges *boundedly and countedly*
/// on exactly the overloaded shard.
#[test]
fn overload_policies_shed_countedly_or_not_at_all() {
    let _g = chaos_lock();
    quiet();
    failpoints::reset();

    let stream = tenant_stream(2, 120);
    let run = |policy: OverloadPolicy| {
        let mut sharded: ShardedMultiEngine<MsTreeStore> = ShardedMultiEngine::new(25, 2);
        let ids: Vec<_> = (0..2u16).map(|t| sharded.register(plan(t))).collect();
        let slow = sharded.shard_of(ids[0]).unwrap();
        sharded.set_overload_policy(policy);
        sharded.set_channel_capacity(2);
        failpoints::arm(sites::WORKER_LOOP, Some(slow as u64), Action::SleepMs(1));
        let out = sharded.process(&stream);
        failpoints::reset();
        (sharded.stats(), slow, ids, out)
    };

    let (st, slow, _, out) = run(OverloadPolicy::Backpressure);
    assert_eq!(st.shards[slow].shed_oldest + st.shards[slow].shed_newest, 0, "lossless");
    assert!(!out.is_empty());

    let (st, slow, _, _) = run(OverloadPolicy::ShedNewest);
    assert!(st.shards[slow].shed_newest > 0, "a slow worker at cap 2 must shed arrivals");
    assert_eq!(st.shards[slow].shed_oldest, 0, "the policies never mix");

    let (st, slow, _, _) = run(OverloadPolicy::ShedOldest);
    assert!(st.shards[slow].shed_oldest > 0, "eviction shedding is counted per shard");
    assert_eq!(st.shards[slow].shed_newest, 0);
}

// Randomized chaos: random tenant fleets, random per-query fault
// schedules on all three query-level sites, and randomly injected
// out-of-order edges (rejected at the gate). Invariant: every query
// never condemned is byte-identical — match stream and stats — to an
// independent TimingEngine fed the sanitized stream.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn chaos_schedules_leave_survivors_byte_identical(seed in any::<u64>()) {
        let _g = chaos_lock();
        quiet();
        failpoints::reset();
        let mut rng = SmallRng::seed_from_u64(seed);
        let window = 25u64;
        let n_tenants = rng.gen_range(2..6u16);
        let len = rng.gen_range(60..200u64);
        let mut stream = tenant_stream(n_tenants, len);
        // Corrupt ~5% of edges: timestamps thrown behind the watermark.
        for e in stream.iter_mut().skip(2) {
            if rng.gen_bool(0.05) {
                e.ts = Timestamp(e.ts.0.saturating_sub(rng.gen_range(2..window * 2)));
            }
        }

        let mut multi: MultiQueryEngine<MsTreeStore> = MultiQueryEngine::new(window);
        multi.set_fault_policy(FaultPolicy::Quarantine);
        let ids: Vec<QueryId> = (0..n_tenants).map(|t| multi.register(plan(t))).collect();
        // Fault schedule: each query may be condemned at a random stream
        // position via a random query-level site.
        let site_pool = [sites::PRE_PROBE, sites::POST_RECORD, sites::PRE_EXPIRY];
        let mut schedule: Vec<(usize, QueryId, &'static str)> = Vec::new();
        for &q in &ids {
            if rng.gen_bool(0.5) {
                let at = rng.gen_range(0..stream.len());
                schedule.push((at, q, site_pool[rng.gen_range(0..3usize)]));
            }
        }
        schedule.sort();

        let mut sanitized: Vec<StreamEdge> = Vec::new();
        let mut emitted: Vec<Vec<MatchRecord>> = vec![Vec::new(); ids.len()];
        for (i, &e) in stream.iter().enumerate() {
            // One arm at a time: the newest scheduled fault replaces any
            // prior arm that never fired (its victim simply survives).
            while let Some(&(at, q, site)) = schedule.first() {
                if at > i {
                    break;
                }
                schedule.remove(0);
                failpoints::arm(site, Some(q.0), Action::Panic(format!("failpoint: {site}")));
            }
            match multi.try_advance(e) {
                Ok(out) => {
                    sanitized.push(e);
                    for (q, m) in out {
                        emitted[ids.iter().position(|&x| x == q).unwrap()].push(m);
                    }
                }
                Err(err) => {
                    prop_assert!(matches!(err, IngestError::OutOfOrder { .. }));
                }
            }
            // A mid-operation panic must never corrupt a *surviving*
            // query's store: the full invariant sweep stays clean after
            // every operation, faults included.
            let violations = multi.audit();
            prop_assert!(
                violations.is_empty(),
                "survivor store audit failed after edge {}:\n{}",
                i,
                tcs_core::store::format_violations(&violations)
            );
        }
        failpoints::reset();

        // Oracle: one independent engine per *surviving* query, fed the
        // sanitized stream. Byte-identical matches and counters.
        let condemned: Vec<QueryId> = multi.faults().iter().map(|f| f.qid).collect();
        prop_assert!(multi.stats().ingest.rejected() > 0 || stream.len() == sanitized.len());
        for (t, &q) in ids.iter().enumerate() {
            if condemned.contains(&q) {
                prop_assert!(multi.stats_of(q).is_none(), "quarantined ⇒ unregistered");
                continue;
            }
            let mut oracle: TimingEngine<MsTreeStore> =
                TimingEngine::new(QueryPlan::build(tenant_query(t as u16), PlanOptions::timing()));
            let mut w = SlidingWindow::new(window);
            let mut want: Vec<MatchRecord> = Vec::new();
            for &e in &sanitized {
                want.extend(oracle.advance(&w.advance(e)));
            }
            prop_assert_eq!(&emitted[t], &want, "survivor match stream, tenant {}", t);
            prop_assert_eq!(multi.stats_of(q).unwrap(), oracle.stats(), "survivor stats, tenant {}", t);
            let oracle_violations = oracle.audit();
            prop_assert!(
                oracle_violations.is_empty(),
                "oracle store audit failed, tenant {}:\n{}",
                t,
                tcs_core::store::format_violations(&oracle_violations)
            );
        }
    }
}
