#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! Oracle equivalence: the streaming engines must report exactly the same
//! new matches as the naive per-snapshot enumerator, at every tick, on
//! random streams and generated queries.

use tcs_core::{IndependentStore, MsTreeStore, PlanOptions, QueryPlan, TimingEngine};
use tcs_graph::gen::{Dataset, QueryGen, TimingMode};
use tcs_graph::window::SlidingWindow;
use tcs_graph::{MatchRecord, QueryGraph, StreamEdge};
use tcs_subiso::SnapshotOracle;

/// Streams `edges` through the oracle and an engine simultaneously,
/// asserting identical new-match sets at every tick.
fn assert_engine_matches_oracle<S: tcs_core::MatchStore>(
    q: &QueryGraph,
    edges: &[StreamEdge],
    window: u64,
    opts: PlanOptions,
    label: &str,
) {
    let mut oracle = SnapshotOracle::new(q.clone());
    let mut engine: TimingEngine<S> = TimingEngine::new(QueryPlan::build(q.clone(), opts));
    let mut w1 = SlidingWindow::new(window);
    let mut w2 = SlidingWindow::new(window);
    for (tick, &e) in edges.iter().enumerate() {
        let expected = oracle.advance(&w1.advance(e));
        let mut got: Vec<MatchRecord> = engine.advance(&w2.advance(e));
        got.sort();
        assert_eq!(got, expected, "{label}: divergence at tick {tick} (edge {:?})", e.id);
    }
}

/// Small dense random streams (few vertices, few labels) stress joins,
/// expiry and multi-role edges much harder than realistic data.
fn dense_stream(n: usize, n_vertices: u32, n_labels: u16, seed: u64) -> Vec<StreamEdge> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let src = rng.gen_range(0..n_vertices);
            let mut dst = rng.gen_range(0..n_vertices);
            while dst == src {
                dst = rng.gen_range(0..n_vertices);
            }
            StreamEdge::new(
                i as u64,
                src,
                (src % n_labels as u32) as u16,
                dst,
                (dst % n_labels as u32) as u16,
                0,
                i as u64 + 1,
            )
        })
        .collect()
}

/// Queries walked out of the dense stream itself, every timing mode.
fn walked_queries(edges: &[StreamEdge], sizes: &[usize], seed: u64) -> Vec<QueryGraph> {
    let gen = QueryGen::new(edges, edges.len().min(100));
    let mut out = Vec::new();
    for &size in sizes {
        for mode in [TimingMode::Full, TimingMode::Empty, TimingMode::Random] {
            out.extend(gen.generate_many(size, mode, 2, seed));
        }
    }
    out
}

#[test]
fn mstree_engine_equals_oracle_on_dense_streams() {
    for seed in 0..4u64 {
        let edges = dense_stream(300, 7, 3, seed);
        for q in walked_queries(&edges, &[2, 3, 4], seed) {
            assert_engine_matches_oracle::<MsTreeStore>(
                &q,
                &edges,
                60,
                PlanOptions::timing(),
                &format!("mstree seed={seed} k≈{}", q.n_edges()),
            );
        }
    }
}

#[test]
fn independent_engine_equals_oracle_on_dense_streams() {
    for seed in 4..7u64 {
        let edges = dense_stream(250, 6, 2, seed);
        for q in walked_queries(&edges, &[2, 3], seed) {
            assert_engine_matches_oracle::<IndependentStore>(
                &q,
                &edges,
                50,
                PlanOptions::timing(),
                &format!("independent seed={seed}"),
            );
        }
    }
}

#[test]
fn randomized_plans_equal_oracle() {
    // Timing-RD / Timing-RJ / Timing-RDJ change performance, never results.
    let edges = dense_stream(250, 6, 2, 11);
    for q in walked_queries(&edges, &[3, 4], 11) {
        for (name, opts) in [
            ("RD", PlanOptions::random_decomposition(5)),
            ("RJ", PlanOptions::random_join(6)),
            ("RDJ", PlanOptions::random_both(7)),
        ] {
            assert_engine_matches_oracle::<MsTreeStore>(&q, &edges, 50, opts, name);
        }
    }
}

#[test]
fn engine_equals_oracle_on_realistic_generators() {
    for dataset in Dataset::ALL {
        let edges = dataset.generate(400, 21);
        let gen = QueryGen::new(&edges, 200);
        for mode in [TimingMode::Full, TimingMode::Empty, TimingMode::Random] {
            for q in gen.generate_many(3, mode, 2, 33) {
                assert_engine_matches_oracle::<MsTreeStore>(
                    &q,
                    &edges,
                    150,
                    PlanOptions::timing(),
                    dataset.name(),
                );
            }
        }
    }
}

#[test]
fn running_example_equals_oracle() {
    // The paper's own query over its own stream (Figure 3/5).
    let q = QueryGraph::running_example();
    let edges = vec![
        StreamEdge::new(1, 7, 4, 8, 5, 0, 1),
        StreamEdge::new(2, 4, 2, 9, 4, 0, 2),
        StreamEdge::new(3, 4, 2, 7, 4, 0, 3),
        StreamEdge::new(4, 5, 3, 4, 2, 0, 4),
        StreamEdge::new(5, 3, 1, 4, 2, 0, 5),
        StreamEdge::new(6, 2, 0, 3, 1, 0, 6),
        StreamEdge::new(7, 5, 3, 3, 1, 0, 7),
        StreamEdge::new(8, 1, 0, 3, 1, 0, 8),
        StreamEdge::new(9, 6, 3, 4, 2, 0, 9),
        StreamEdge::new(10, 5, 3, 7, 4, 0, 10),
    ];
    assert_engine_matches_oracle::<MsTreeStore>(
        &q,
        &edges,
        9,
        PlanOptions::timing(),
        "running-example",
    );
    assert_engine_matches_oracle::<IndependentStore>(
        &q,
        &edges,
        9,
        PlanOptions::timing(),
        "running-example-ind",
    );
}
