#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! The batch path's defining guarantee, property-tested: slicing a stream
//! into batches at *any* boundaries — size-1 batches, one whole-stream
//! batch, or random chunks — emits match streams and engine stats
//! byte-identical to per-edge ingestion. Batching is amortization only;
//! it must never change what is emitted, in what order, or what the
//! counters say.
//!
//! Coverage: both serial stores (MS-tree and Timing-IND) under
//! `BatchMode::Sorted` with and without a maintenance fuel meter, the
//! concurrent engine's CmsTree as the third store (sorted-set equality,
//! its documented contract), and the multi-query registry with
//! register/unregister churn landing exactly on batch boundaries.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tcs_concurrent::{ConcurrentEngine, LockingMode};
use tcs_core::plan::{PlanOptions, QueryPlan};
use tcs_core::store::MatchStore;
use tcs_core::{BatchMode, IndependentStore, MsTreeStore, TimingEngine};
use tcs_graph::query::QueryEdge;
use tcs_graph::window::SlidingWindow;
use tcs_graph::{ELabel, MatchRecord, QueryGraph, StreamEdge, VLabel};
use tcs_multi::{DispatchMode, MultiQueryEngine, QueryId};

/// A small connected random query (the `tests/property_tests.rs` recipe).
fn random_query(rng: &mut SmallRng, n_labels: u16) -> QueryGraph {
    let n_v = rng.gen_range(2..4usize);
    let labels: Vec<VLabel> = (0..n_v).map(|_| VLabel(rng.gen_range(0..n_labels))).collect();
    let mut edges = Vec::new();
    for v in 1..n_v {
        let u = rng.gen_range(0..v);
        if rng.gen_bool(0.5) {
            edges.push(QueryEdge { src: u, dst: v, label: ELabel::NONE });
        } else {
            edges.push(QueryEdge { src: v, dst: u, label: ELabel::NONE });
        }
    }
    if rng.gen_bool(0.4) {
        let a = rng.gen_range(0..n_v);
        let b = rng.gen_range(0..n_v);
        edges.push(QueryEdge { src: a, dst: b, label: ELabel::NONE });
    }
    let mut pairs = Vec::new();
    for i in 0..edges.len() {
        for j in i + 1..edges.len() {
            if rng.gen_bool(0.4) {
                pairs.push((i, j));
            }
        }
    }
    QueryGraph::new(labels, edges, &pairs).expect("construction is valid")
}

/// A random stream with nondecreasing timestamps, repeated endpoints (so
/// same-signature runs form and the verdict cache engages) and occasional
/// jumps that force multi-edge expiry cascades mid-batch.
fn random_stream(rng: &mut SmallRng, len: usize, n_labels: u16, window: u64) -> Vec<StreamEdge> {
    let mut ts = 0u64;
    (0..len)
        .map(|i| {
            if rng.gen_bool(0.05) {
                ts += window / 3 + 1;
            } else if rng.gen_bool(0.6) {
                ts += 1; // bursts: repeated ts keeps runs unbroken
            }
            let src = rng.gen_range(0..6u32);
            let mut dst = rng.gen_range(0..6u32);
            while dst == src {
                dst = rng.gen_range(0..6u32);
            }
            StreamEdge::new(
                i as u64 + 1,
                src,
                (src % n_labels as u32) as u16,
                dst,
                (dst % n_labels as u32) as u16,
                0,
                ts.max(1),
            )
        })
        .collect()
}

/// Batch boundaries for a stream of `len` edges: `kind` 0 = all size-1
/// batches, 1 = one whole-stream batch, otherwise random chunk sizes.
/// Returned as exclusive end positions; always ends at `len`.
fn boundaries(rng: &mut SmallRng, len: usize, kind: u8) -> Vec<usize> {
    match kind {
        0 => (1..=len).collect(),
        1 => vec![len],
        _ => {
            let mut cuts = Vec::new();
            let mut at = 0;
            while at < len {
                at = (at + rng.gen_range(1..=len.min(24))).min(len);
                cuts.push(at);
            }
            cuts
        }
    }
}

/// Per-edge reference run: `BatchMode::PerEdge`, one window event at a
/// time — the ablation baseline the batch path must reproduce exactly.
fn per_edge_run<S: MatchStore>(
    q: &QueryGraph,
    stream: &[StreamEdge],
    window: u64,
) -> (Vec<MatchRecord>, TimingEngine<S>) {
    let mut eng: TimingEngine<S> =
        TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
    eng.set_batch_mode(BatchMode::PerEdge);
    let mut w = SlidingWindow::new(window);
    let mut out = Vec::new();
    for &e in stream {
        out.extend(eng.advance(&w.advance(e)));
    }
    (out, eng)
}

/// Batched run over the given boundaries: `BatchMode::Sorted`, one
/// `BatchEvent` per chunk, optionally with a per-batch maintenance fuel
/// allowance (settled at end of stream so the final state is debt-free).
fn batched_run<S: MatchStore>(
    q: &QueryGraph,
    stream: &[StreamEdge],
    window: u64,
    cuts: &[usize],
    fuel: Option<u64>,
) -> (Vec<MatchRecord>, TimingEngine<S>) {
    let mut eng: TimingEngine<S> =
        TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
    eng.set_batch_fuel(fuel);
    let mut w = SlidingWindow::new(window);
    let mut out = Vec::new();
    let mut at = 0;
    for &end in cuts {
        let ev = w.advance_batch(&stream[at..end]);
        out.extend(eng.advance_batch(&ev));
        at = end;
    }
    eng.settle_maintenance();
    eng.set_batch_fuel(None);
    (out, eng)
}

fn check_serial<S: MatchStore>(
    q: &QueryGraph,
    stream: &[StreamEdge],
    window: u64,
    cuts: &[usize],
    label: &str,
) -> Vec<MatchRecord> {
    let (want, ref_eng) = per_edge_run::<S>(q, stream, window);
    for fuel in [None, Some(32)] {
        let (got, eng) = batched_run::<S>(q, stream, window, cuts, fuel);
        assert_eq!(got, want, "{label} fuel={fuel:?}: match streams diverge");
        assert_eq!(eng.stats(), ref_eng.stats(), "{label} fuel={fuel:?}: stats diverge");
        assert_eq!(eng.ingest_stats(), ref_eng.ingest_stats(), "{label} fuel={fuel:?}");
        assert_eq!(eng.live_match_count(), ref_eng.live_match_count(), "{label} fuel={fuel:?}");
        eng.assert_clean();
    }
    want
}

/// Multi-query run with churn at batch boundaries: `schedule[i]` holds
/// the episode indices whose registration (start) or removal (end) lands
/// at stream position `i`. The per-edge fold applies the same schedule at
/// the same positions, so per-query subsequences must be byte-identical.
struct Episode {
    query: QueryGraph,
    start: usize,
    end: usize,
}

fn multi_run(
    episodes: &[Episode],
    stream: &[StreamEdge],
    window: u64,
    mode: DispatchMode,
    cuts: Option<&[usize]>,
) -> (Vec<Vec<MatchRecord>>, MultiQueryEngine<MsTreeStore>) {
    let mut multi: MultiQueryEngine<MsTreeStore> = MultiQueryEngine::with_mode(window, mode);
    let mut ids: Vec<Option<QueryId>> = vec![None; episodes.len()];
    let mut out: Vec<Vec<MatchRecord>> = (0..episodes.len()).map(|_| Vec::new()).collect();
    let churn = |multi: &mut MultiQueryEngine<MsTreeStore>,
                 ids: &mut Vec<Option<QueryId>>,
                 at: usize| {
        for (ei, ep) in episodes.iter().enumerate() {
            if ep.end == at {
                assert!(multi.unregister(ids[ei].expect("episode was registered")));
            }
        }
        for (ei, ep) in episodes.iter().enumerate() {
            if ep.start == at {
                ids[ei] =
                    Some(multi.register(QueryPlan::build(ep.query.clone(), PlanOptions::timing())));
            }
        }
    };
    let emit = |out: &mut Vec<Vec<MatchRecord>>,
                ids: &[Option<QueryId>],
                batch: Vec<(QueryId, MatchRecord)>| {
        for (qid, m) in batch {
            let ei = ids.iter().position(|&x| x == Some(qid)).expect("emitting query is live");
            out[ei].push(m);
        }
    };
    match cuts {
        None => {
            for (i, &e) in stream.iter().enumerate() {
                churn(&mut multi, &mut ids, i);
                let got = multi.advance(e);
                emit(&mut out, &ids, got);
            }
        }
        Some(cuts) => {
            let mut at = 0;
            for &end in cuts {
                churn(&mut multi, &mut ids, at);
                let got = multi.advance_batch(&stream[at..end]);
                emit(&mut out, &ids, got);
                at = end;
            }
        }
    }
    (out, multi)
}

fn check_case(seed: u64, kind: u8) {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(kind as u64));
    let window = 40u64;
    let n_labels = 3u16;
    let stream = random_stream(&mut rng, 160, n_labels, window);
    let q = random_query(&mut rng, n_labels);
    let cuts = boundaries(&mut rng, stream.len(), kind);

    // Serial engines, both stores: byte-identical streams and stats.
    let ms = check_serial::<MsTreeStore>(&q, &stream, window, &cuts, "ms-tree");
    let ind = check_serial::<IndependentStore>(&q, &stream, window, &cuts, "timing-ind");
    // Cross-store emission order legitimately differs; sets agree.
    let mut ms_sorted = ms;
    let mut ind_sorted = ind;
    ms_sorted.sort();
    ind_sorted.sort();
    assert_eq!(ms_sorted, ind_sorted, "stores agree on the match set");

    // Third store: the concurrent engine's CmsTree consuming the same
    // stream — sorted-set equality is its documented contract.
    let plan = QueryPlan::build(q.clone(), PlanOptions::timing());
    let mut conc = ConcurrentEngine::new(plan, 2, LockingMode::FineGrained);
    let mut got = conc.run(&stream, window).matches;
    got.sort();
    assert_eq!(got, ms_sorted, "cms-tree agrees on the match set");
    conc.assert_clean();

    // Multi-query registry with register/unregister churn on batch
    // boundaries: per-query subsequences are byte-identical to the
    // per-edge fold applying the same schedule.
    let starts: Vec<usize> = std::iter::once(0).chain(cuts.iter().copied()).collect();
    let n_eps = rng.gen_range(1..4usize);
    let episodes: Vec<Episode> = (0..n_eps)
        .map(|_| {
            let si = rng.gen_range(0..starts.len() - 1);
            let start = starts[si];
            let end = if rng.gen_bool(0.5) {
                starts[rng.gen_range(si + 1..starts.len())]
            } else {
                stream.len() + 1 // never unregisters
            };
            Episode { query: random_query(&mut rng, n_labels), start, end }
        })
        .collect();
    for mode in [DispatchMode::Signature, DispatchMode::Broadcast] {
        let (want, per_edge) = multi_run(&episodes, &stream, window, mode, None);
        let (got, batched) = multi_run(&episodes, &stream, window, mode, Some(&cuts));
        for (ei, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(g, w, "episode {ei} ({mode:?}) diverges from the per-edge fold");
        }
        per_edge.assert_clean();
        batched.assert_clean();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_batch_boundaries_are_invisible(seed in any::<u64>(), kind in 0u8..3) {
        check_case(seed, kind);
    }
}

/// The two degenerate slicings are always exercised, whatever proptest
/// samples: every batch size 1, and the whole stream as one batch.
#[test]
fn degenerate_slicings_are_invisible() {
    for seed in 0..3u64 {
        check_case(seed, 0);
        check_case(seed, 1);
    }
}
