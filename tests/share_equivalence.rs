#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! The sharing layer's contract, test-enforced from two directions:
//!
//! 1. **Equivalence** (default build): under random register/unregister
//!    churn of *duplicated* plans — the workload sharing exists for —
//!    [`ShareMode::Shared`] emits, per subscriber, byte-identical match
//!    streams to [`ShareMode::Private`], while running strictly fewer
//!    engines; the routed/emitted counters account for every fan-out
//!    decision.
//! 2. **Blast radius** (`--features failpoints`): a fault injected while
//!    a shared template works hits *exactly* that template's subscribers
//!    — all of them, and nobody else. Under `Private` the same fault
//!    costs only the one faulted twin; its duplicates keep running. The
//!    wider shared blast radius is the price of sharing, and it is
//!    test-pinned, not folklore.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tcs_core::plan::{PlanOptions, QueryPlan};
use tcs_core::MsTreeStore;
use tcs_graph::query::QueryEdge;
use tcs_graph::{ELabel, MatchRecord, QueryGraph, StreamEdge, VLabel};
use tcs_multi::{DispatchMode, MultiQueryEngine, QueryId, ShareMode};

/// Tenant `t`'s two-hop path over its private label alphabet
/// `{3t, 3t+1, 3t+2}` — tenant edges route only to tenant queries, so
/// per-tenant match streams (and fault targeting) are deterministic.
fn tenant_query(t: u16) -> QueryGraph {
    QueryGraph::new(
        vec![VLabel(3 * t), VLabel(3 * t + 1), VLabel(3 * t + 2)],
        vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
        ],
        &[(0, 1)],
    )
    .unwrap()
}

/// A stream that interleaves every tenant's two-hop occurrences: for
/// tenant `t`, vertices `10t -> 10t+1 -> 10t+2` with hop 1 before hop 2.
fn tenant_stream(rng: &mut SmallRng, n_tenants: u16, len: usize) -> Vec<StreamEdge> {
    let mut ts = 0u64;
    (0..len)
        .map(|i| {
            ts += 1;
            let t = rng.gen_range(0..n_tenants) as u32;
            let hop = rng.gen_range(0..2u32);
            StreamEdge::new(
                i as u64 + 1,
                10 * t + hop,
                (3 * t + hop) as u16,
                10 * t + hop + 1,
                (3 * t + hop + 1) as u16,
                0,
                ts,
            )
        })
        .collect()
}

/// One registration episode: tenant `tenant`'s query, live for arrivals
/// `start..end`.
struct Episode {
    tenant: u16,
    start: usize,
    end: usize,
}

/// Drives a registry through the stream under the episode schedule;
/// returns per-episode match streams plus each live episode's final
/// (routed, emitted) counters.
#[allow(clippy::type_complexity)]
fn run(
    episodes: &[Episode],
    stream: &[StreamEdge],
    window: u64,
    share: ShareMode,
) -> (Vec<Vec<MatchRecord>>, Vec<Option<(u64, u64)>>, usize) {
    let mut multi: MultiQueryEngine<MsTreeStore> =
        MultiQueryEngine::with_mode(window, DispatchMode::Signature);
    multi.set_share_mode(share);
    let mut ids: Vec<Option<QueryId>> = vec![None; episodes.len()];
    let mut out: Vec<Vec<MatchRecord>> = (0..episodes.len()).map(|_| Vec::new()).collect();
    let mut peak_templates = 0usize;
    for (i, e) in stream.iter().enumerate() {
        for (ei, ep) in episodes.iter().enumerate() {
            if ep.end == i {
                assert!(multi.unregister(ids[ei].expect("episode was registered")));
            }
        }
        for (ei, ep) in episodes.iter().enumerate() {
            if ep.start == i {
                ids[ei] = Some(
                    multi
                        .register(QueryPlan::build(tenant_query(ep.tenant), PlanOptions::timing())),
                );
            }
        }
        peak_templates = peak_templates.max(multi.n_templates());
        for (qid, m) in multi.advance(*e) {
            let ei = ids.iter().position(|&x| x == Some(qid)).expect("emitting query is live");
            out[ei].push(m);
        }
    }
    let counters = episodes
        .iter()
        .enumerate()
        .map(
            |(ei, ep)| {
                if ep.end == stream.len() {
                    multi.counters_of(ids[ei].unwrap())
                } else {
                    None
                }
            },
        )
        .collect();
    (out, counters, peak_templates)
}

fn check_duplicated_churn(seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let window = 40u64;
    let n_tenants = 3u16;
    let stream = tenant_stream(&mut rng, n_tenants, 160);
    // Each tenant's query registered with random multiplicity (1..=4)
    // and random lifetimes — heavy duplication by construction.
    let mut episodes = Vec::new();
    for t in 0..n_tenants {
        for _ in 0..rng.gen_range(1..=4usize) {
            let start = rng.gen_range(0..stream.len() / 2);
            let end = if rng.gen_bool(0.4) {
                rng.gen_range(start + 1..=stream.len())
            } else {
                stream.len()
            };
            episodes.push(Episode { tenant: t, start, end });
        }
    }
    let (shr, shr_counters, shr_peak) = run(&episodes, &stream, window, ShareMode::Shared);
    let (prv, prv_counters, prv_peak) = run(&episodes, &stream, window, ShareMode::Private);
    for ei in 0..episodes.len() {
        assert_eq!(shr[ei], prv[ei], "seed {seed} episode {ei}: shared vs private streams");
        // Counters reconcile exactly: `emitted` is the subscriber's match
        // count, and `routed` is its dispatched-edge count — every tenant
        // edge in the live range matches exactly one of the two-hop
        // query's signatures, so both registries must report the same
        // figure (sharing must not double- or under-dispatch).
        if let (Some((s_routed, s_emitted)), Some((p_routed, p_emitted))) =
            (shr_counters[ei], prv_counters[ei])
        {
            assert_eq!(s_emitted, shr[ei].len() as u64, "seed {seed} episode {ei} emitted");
            assert_eq!(s_emitted, p_emitted, "seed {seed} episode {ei} emitted vs private");
            let ep = &episodes[ei];
            let tenant_edges =
                stream[ep.start..ep.end].iter().filter(|e| e.src_label.0 / 3 == ep.tenant).count()
                    as u64;
            assert_eq!(s_routed, tenant_edges, "seed {seed} episode {ei} routed (shared)");
            assert_eq!(p_routed, tenant_edges, "seed {seed} episode {ei} routed (private)");
        }
    }
    // Sharing never runs more engines than Private, and duplication is
    // real: peak templates are bounded by the distinct-plan count.
    assert!(shr_peak <= prv_peak, "seed {seed}: shared peak {shr_peak} > private {prv_peak}");
    assert!(
        shr_peak <= n_tenants as usize,
        "seed {seed}: {shr_peak} shared templates for {n_tenants} distinct plans"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Duplicated plans under random churn: Shared and Private emit
    /// identical per-subscriber streams, counters reconcile, and the
    /// shared registry never holds more templates than distinct plans.
    #[test]
    fn shared_equals_private_under_duplicated_churn(seed in any::<u64>()) {
        check_duplicated_churn(seed);
    }
}

/// Fault-injection half: compiled only with `--features failpoints`
/// (CI's chaos step runs it). Serializes on a local mutex — the
/// failpoint registry is process-global.
#[cfg(feature = "failpoints")]
mod blast_radius {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use tcs_core::failpoints::{self, sites, Action};
    use tcs_multi::FaultPolicy;

    fn chaos_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn quiet() {
        static ONCE: OnceLock<()> = OnceLock::new();
        ONCE.get_or_init(failpoints::install_quiet_hook);
    }

    /// Three tenants; tenant 0's query registered three times. A panic
    /// armed on one tenant-0 subscriber while its shared template works.
    fn build(share: ShareMode) -> (MultiQueryEngine<MsTreeStore>, Vec<QueryId>) {
        let mut multi: MultiQueryEngine<MsTreeStore> =
            MultiQueryEngine::with_mode(60, DispatchMode::Signature);
        multi.set_share_mode(share);
        multi.set_fault_policy(FaultPolicy::Quarantine);
        let mut ids = Vec::new();
        for t in [0u16, 0, 0, 1, 2] {
            ids.push(multi.register(QueryPlan::build(tenant_query(t), PlanOptions::timing())));
        }
        (multi, ids)
    }

    fn drive(
        multi: &mut MultiQueryEngine<MsTreeStore>,
        per_q: &mut [Vec<MatchRecord>],
        ids: &[QueryId],
    ) {
        let mut rng = SmallRng::seed_from_u64(0xb1a57);
        for e in tenant_stream(&mut rng, 3, 120) {
            for (qid, m) in multi.advance(e) {
                per_q[ids.iter().position(|&x| x == qid).unwrap()].push(m);
            }
        }
    }

    /// Shared: the fault takes down the whole template — all three
    /// tenant-0 subscribers — and exactly them. Tenants 1 and 2 keep
    /// their full streams.
    #[test]
    fn shared_fault_quarantines_every_template_subscriber() {
        let _g = chaos_lock();
        quiet();
        failpoints::reset();
        let (mut multi, ids) = build(ShareMode::Shared);
        assert_eq!(multi.n_templates(), 3);
        failpoints::arm(
            sites::PRE_PROBE,
            Some(ids[1].0),
            Action::Panic("failpoint: shared".into()),
        );
        let mut per_q: Vec<Vec<MatchRecord>> = vec![Vec::new(); ids.len()];
        drive(&mut multi, &mut per_q, &ids);
        failpoints::reset();
        let mut faulted: Vec<QueryId> = multi.faults().iter().map(|f| f.qid).collect();
        faulted.sort_unstable();
        assert_eq!(faulted, vec![ids[0], ids[1], ids[2]], "whole template, nothing else");
        assert_eq!(multi.n_templates(), 2, "faulted template is gone, survivors kept");
        assert!(per_q[0].is_empty() && per_q[1].is_empty() && per_q[2].is_empty());
        // Survivors saw every one of their matches: byte-identical to a
        // clean private run of the same schedule.
        let (mut oracle, oids) = build(ShareMode::Private);
        let mut want: Vec<Vec<MatchRecord>> = vec![Vec::new(); oids.len()];
        drive(&mut oracle, &mut want, &oids);
        assert!(oracle.faults().is_empty());
        assert_eq!(per_q[3], want[3], "tenant 1 unaffected");
        assert_eq!(per_q[4], want[4], "tenant 2 unaffected");
        assert!(!want[3].is_empty() && !want[4].is_empty(), "oracle streams are non-trivial");
    }

    /// Private: the same fault costs exactly one twin; the other two
    /// copies of the identical plan keep emitting.
    #[test]
    fn private_fault_quarantines_only_the_faulted_twin() {
        let _g = chaos_lock();
        quiet();
        failpoints::reset();
        let (mut multi, ids) = build(ShareMode::Private);
        assert_eq!(multi.n_templates(), 5, "private: one engine per registration");
        failpoints::arm(sites::PRE_PROBE, Some(ids[1].0), Action::Panic("failpoint: twin".into()));
        let mut per_q: Vec<Vec<MatchRecord>> = vec![Vec::new(); ids.len()];
        drive(&mut multi, &mut per_q, &ids);
        failpoints::reset();
        let faulted: Vec<QueryId> = multi.faults().iter().map(|f| f.qid).collect();
        assert_eq!(faulted, vec![ids[1]], "exactly the armed twin");
        assert!(per_q[1].is_empty());
        assert_eq!(per_q[0], per_q[2], "surviving twins agree");
        assert!(!per_q[0].is_empty(), "surviving twins kept emitting");
    }

    /// A template quarantined by a fault is re-registerable fresh: the
    /// next registration of the same plan founds a new engine and emits
    /// from its own start, with no residue from the dead template.
    #[test]
    fn quarantined_template_rebuilds_fresh_on_reregistration() {
        let _g = chaos_lock();
        quiet();
        failpoints::reset();
        let (mut multi, ids) = build(ShareMode::Shared);
        failpoints::arm(sites::PRE_PROBE, Some(ids[0].0), Action::Panic("failpoint: dead".into()));
        let mut per_q: Vec<Vec<MatchRecord>> = vec![Vec::new(); ids.len()];
        drive(&mut multi, &mut per_q, &ids);
        failpoints::reset();
        assert_eq!(multi.faults().len(), 3);
        let revived = multi.register(QueryPlan::build(tenant_query(0), PlanOptions::timing()));
        assert!(ids.iter().all(|&id| id != revived), "ids are never reused");
        assert_eq!(multi.n_templates(), 3, "fresh founder for the dead plan");
        assert_eq!(multi.counters_of(revived), Some((0, 0)));
    }
}
