#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! Window-semantics integration tests: matches must appear and disappear
//! exactly as the time window slides (Definition 2 + Definition 4), across
//! all engines.

use tcs_baselines::{IncMat, SjTree};
use tcs_concurrent::{ConcurrentEngine, LockingMode};
use tcs_core::{IndependentStore, MatchStore, MsTreeStore, PlanOptions, QueryPlan, TimingEngine};
use tcs_graph::query::QueryEdge;
use tcs_graph::window::SlidingWindow;
use tcs_graph::{ELabel, QueryGraph, StreamEdge, VLabel};
use tcs_subiso::Strategy;

fn two_path(pairs: &[(usize, usize)]) -> QueryGraph {
    QueryGraph::new(
        vec![VLabel(0), VLabel(1), VLabel(2)],
        vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
        ],
        pairs,
    )
    .unwrap()
}

fn engine(q: &QueryGraph) -> TimingEngine<MsTreeStore> {
    TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()))
}

#[test]
fn match_lives_exactly_while_all_edges_live() {
    let q = two_path(&[(0, 1)]);
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(10);
    eng.advance(&w.advance(StreamEdge::new(1, 10, 0, 11, 1, 0, 5)));
    let m = eng.advance(&w.advance(StreamEdge::new(2, 11, 1, 12, 2, 0, 8)));
    assert_eq!(m.len(), 1);
    assert_eq!(eng.live_match_count(), 1);
    // At t=14 edge 1 (ts=5) is still inside (4, 14]: alive.
    eng.advance(&w.advance(StreamEdge::new(3, 50, 0, 51, 1, 0, 14)));
    assert_eq!(eng.live_match_count(), 1);
    // At t=15 edge 1 expires ((5, 15] excludes ts=5): match gone.
    eng.advance(&w.advance(StreamEdge::new(4, 52, 0, 53, 1, 0, 15)));
    assert_eq!(eng.live_match_count(), 0);
}

#[test]
fn rebuilt_pattern_after_expiry_matches_again() {
    let q = two_path(&[(0, 1)]);
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(10);
    eng.advance(&w.advance(StreamEdge::new(1, 10, 0, 11, 1, 0, 1)));
    assert_eq!(eng.advance(&w.advance(StreamEdge::new(2, 11, 1, 12, 2, 0, 2))).len(), 1);
    // Slide far: everything expires.
    eng.advance(&w.advance(StreamEdge::new(3, 99, 0, 98, 1, 0, 100)));
    assert_eq!(eng.live_match_count(), 0);
    // Same vertices again, fresh edges: a new match forms.
    eng.advance(&w.advance(StreamEdge::new(4, 10, 0, 11, 1, 0, 101)));
    let m = eng.advance(&w.advance(StreamEdge::new(5, 11, 1, 12, 2, 0, 102)));
    assert_eq!(m.len(), 1);
    assert_eq!(eng.live_match_count(), 1);
}

#[test]
fn partial_prefix_expiry_prunes_descendants_only() {
    // Query a→b, b→c, b→d with 0≺1, 0≺2: two leaves share the prefix.
    let q = QueryGraph::new(
        vec![VLabel(0), VLabel(1), VLabel(2), VLabel(2)],
        vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 3, label: ELabel::NONE },
        ],
        &[(0, 1), (0, 2)],
    )
    .unwrap();
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(100);
    eng.advance(&w.advance(StreamEdge::new(1, 10, 0, 11, 1, 0, 1)));
    eng.advance(&w.advance(StreamEdge::new(2, 11, 1, 12, 2, 0, 2)));
    let m = eng.advance(&w.advance(StreamEdge::new(3, 11, 1, 13, 2, 0, 3)));
    assert_eq!(
        m.len(),
        2,
        "two (c,d) assignments: (12,13) and (13,12)? \
        no — ε1→e2/ε2→e3 and ε1→e3/ε2→e2, both valid: {m:?}"
    );
}

#[test]
fn sjtree_and_timing_agree_after_heavy_sliding() {
    let q = two_path(&[(0, 1)]);
    let mut a = engine(&q);
    let mut b = SjTree::new(q.clone());
    let mut w1 = SlidingWindow::new(7);
    let mut w2 = SlidingWindow::new(7);
    let mut total_a = 0;
    let mut total_b = 0;
    // Repeating pattern with increasing gaps: exercises many expiries.
    let mut ts = 0u64;
    for round in 0..40u64 {
        ts += 1 + round % 3;
        let e1 = StreamEdge::new(round * 2, 10, 0, 11, 1, 0, ts);
        total_a += a.advance(&w1.advance(e1)).len();
        total_b += b.advance(&w2.advance(e1)).len();
        ts += 1 + (round / 2) % 4;
        let e2 = StreamEdge::new(round * 2 + 1, 11, 1, 12, 2, 0, ts);
        total_a += a.advance(&w1.advance(e2)).len();
        total_b += b.advance(&w2.advance(e2)).len();
    }
    assert_eq!(total_a, total_b);
    assert!(total_a > 0);
}

/// The general window boundary, pinned across every engine and baseline:
/// with a window of duration `|W|` at time `t`, the timespan is the
/// half-open `(t − |W|, t]`, so an edge whose timestamp is EXACTLY
/// `t − |W|` is expired while `t − |W| + 1` is still live. The PR-2 fix
/// pinned the `ts = 0, t < |W|` corner in `SlidingWindow` itself; this
/// drives the fencepost through `TimingEngine` (both stores), the
/// concurrent engine, SJ-tree and IncMat, checking they all agree.
///
/// Construction: e1 = a→b at `base`, e2 = b→c at `base + 1` form a match;
/// a probe edge e3 = b→c' arrives at `base + |W| + off`. For `off = 0` the
/// window is `(base, base + |W|]` — e1 sits exactly on the open bound and
/// must be gone, so e3 joins nothing. For `off = −1` e1 is still live and
/// e3 forms a second match.
#[test]
fn exact_boundary_expiry_is_identical_across_engines_and_baselines() {
    const W: u64 = 10;
    let q = two_path(&[(0, 1)]);
    for (base, probe_offset, expect_probe_matches) in
        [(5u64, 0i64, 0usize), (5, -1, 1), (1, 0, 0), (1, -1, 1), (23, 3, 0), (40, -4, 1)]
    {
        let probe_ts = (base + W).checked_add_signed(probe_offset).expect("valid ts");
        let stream = [
            StreamEdge::new(1, 10, 0, 11, 1, 0, base),
            StreamEdge::new(2, 11, 1, 12, 2, 0, base + 1),
            // b→c' with a fresh c': joins e1 iff e1 is still live.
            StreamEdge::new(3, 11, 1, 13, 2, 0, probe_ts),
        ];
        let tag = format!("base {base} probe at t-|W|{probe_offset:+}");

        // Serial engines, both stores.
        fn timing_counts<S: MatchStore>(q: &QueryGraph, stream: &[StreamEdge]) -> (usize, usize) {
            let mut eng: TimingEngine<S> =
                TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
            let mut w = SlidingWindow::new(W);
            let mut per_arrival = Vec::new();
            for &e in stream {
                per_arrival.push(eng.advance(&w.advance(e)).len());
            }
            (*per_arrival.last().expect("nonempty"), eng.live_match_count())
        }
        let (ms_probe, ms_live) = timing_counts::<MsTreeStore>(&q, &stream);
        let (ind_probe, ind_live) = timing_counts::<IndependentStore>(&q, &stream);
        assert_eq!(ms_probe, expect_probe_matches, "MsTree probe matches, {tag}");
        assert_eq!((ms_probe, ms_live), (ind_probe, ind_live), "store divergence, {tag}");

        // Concurrent engine: total matches = the first pair's match plus
        // the probe's (if the boundary kept e1 alive); final live count
        // counts only windows-surviving matches.
        for mode in [LockingMode::FineGrained, LockingMode::AllLocks] {
            let plan = QueryPlan::build(q.clone(), PlanOptions::timing());
            let mut conc = ConcurrentEngine::new(plan, 2, mode);
            let total = conc.run(&stream, W).matches.len();
            assert_eq!(total, 1 + expect_probe_matches, "concurrent total, {tag} {mode:?}");
        }

        // SJ-tree (posterior timing filter, same window events).
        let mut sj = SjTree::new(q.clone());
        let mut w = SlidingWindow::new(W);
        let mut sj_per_arrival = Vec::new();
        for &e in &stream {
            sj_per_arrival.push(sj.advance(&w.advance(e)).len());
        }
        assert_eq!(
            *sj_per_arrival.last().expect("nonempty"),
            expect_probe_matches,
            "SJ-tree probe matches, {tag}"
        );

        // IncMat recomputes from the window's snapshot graph — the
        // boundary edge must already be outside it.
        for strategy in [Strategy::QuickSi, Strategy::TurboIso, Strategy::BoostIso] {
            let mut inc = IncMat::new(q.clone(), strategy);
            let mut w = SlidingWindow::new(W);
            let mut inc_per_arrival = Vec::new();
            for &e in &stream {
                inc_per_arrival.push(inc.advance(&w.advance(e)).len());
            }
            assert_eq!(
                *inc_per_arrival.last().expect("nonempty"),
                expect_probe_matches,
                "IncMat probe matches, {tag} {strategy:?}"
            );
        }
    }
}

#[test]
fn boundary_expiry_retracts_live_matches_in_both_stores() {
    // The match itself must disappear the instant its oldest edge sits
    // exactly on t − |W|, in both serial stores (live_match_count probes
    // the store's own row accounting, exercised under tombstones).
    const W: u64 = 7;
    fn live_after<S: MatchStore>(q: &QueryGraph, slide_to: u64) -> usize {
        let mut eng: TimingEngine<S> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut w = SlidingWindow::new(W);
        eng.advance(&w.advance(StreamEdge::new(1, 10, 0, 11, 1, 0, 3)));
        eng.advance(&w.advance(StreamEdge::new(2, 11, 1, 12, 2, 0, 4)));
        eng.advance(&w.advance(StreamEdge::new(3, 50, 0, 51, 1, 0, slide_to)));
        eng.live_match_count()
    }
    let q = two_path(&[(0, 1)]);
    // At t = 3 + W − 1 = 9 the oldest edge (ts 3) is inside (2, 9]: live.
    assert_eq!(live_after::<MsTreeStore>(&q, 3 + W - 1), 1);
    assert_eq!(live_after::<IndependentStore>(&q, 3 + W - 1), 1);
    // At t = 3 + W = 10 it sits exactly on the open bound of (3, 10]: gone.
    assert_eq!(live_after::<MsTreeStore>(&q, 3 + W), 0);
    assert_eq!(live_after::<IndependentStore>(&q, 3 + W), 0);
}

#[test]
fn empty_window_engine_is_stable() {
    // Long silence between edges: everything expires between ticks.
    let q = two_path(&[]);
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(2);
    for i in 0..20u64 {
        let m = eng.advance(&w.advance(StreamEdge::new(i, 10, 0, 11, 1, 0, (i + 1) * 100)));
        assert!(m.is_empty());
        assert_eq!(eng.live_match_count(), 0);
    }
    assert_eq!(eng.stats().partials_deleted, 19, "each tick expires the previous edge");
}
