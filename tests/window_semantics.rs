//! Window-semantics integration tests: matches must appear and disappear
//! exactly as the time window slides (Definition 2 + Definition 4), across
//! all engines.

use tcs_baselines::SjTree;
use tcs_core::{MsTreeStore, PlanOptions, QueryPlan, TimingEngine};
use tcs_graph::query::QueryEdge;
use tcs_graph::window::SlidingWindow;
use tcs_graph::{ELabel, QueryGraph, StreamEdge, VLabel};

fn two_path(pairs: &[(usize, usize)]) -> QueryGraph {
    QueryGraph::new(
        vec![VLabel(0), VLabel(1), VLabel(2)],
        vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
        ],
        pairs,
    )
    .unwrap()
}

fn engine(q: &QueryGraph) -> TimingEngine<MsTreeStore> {
    TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()))
}

#[test]
fn match_lives_exactly_while_all_edges_live() {
    let q = two_path(&[(0, 1)]);
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(10);
    eng.advance(&w.advance(StreamEdge::new(1, 10, 0, 11, 1, 0, 5)));
    let m = eng.advance(&w.advance(StreamEdge::new(2, 11, 1, 12, 2, 0, 8)));
    assert_eq!(m.len(), 1);
    assert_eq!(eng.live_match_count(), 1);
    // At t=14 edge 1 (ts=5) is still inside (4, 14]: alive.
    eng.advance(&w.advance(StreamEdge::new(3, 50, 0, 51, 1, 0, 14)));
    assert_eq!(eng.live_match_count(), 1);
    // At t=15 edge 1 expires ((5, 15] excludes ts=5): match gone.
    eng.advance(&w.advance(StreamEdge::new(4, 52, 0, 53, 1, 0, 15)));
    assert_eq!(eng.live_match_count(), 0);
}

#[test]
fn rebuilt_pattern_after_expiry_matches_again() {
    let q = two_path(&[(0, 1)]);
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(10);
    eng.advance(&w.advance(StreamEdge::new(1, 10, 0, 11, 1, 0, 1)));
    assert_eq!(eng.advance(&w.advance(StreamEdge::new(2, 11, 1, 12, 2, 0, 2))).len(), 1);
    // Slide far: everything expires.
    eng.advance(&w.advance(StreamEdge::new(3, 99, 0, 98, 1, 0, 100)));
    assert_eq!(eng.live_match_count(), 0);
    // Same vertices again, fresh edges: a new match forms.
    eng.advance(&w.advance(StreamEdge::new(4, 10, 0, 11, 1, 0, 101)));
    let m = eng.advance(&w.advance(StreamEdge::new(5, 11, 1, 12, 2, 0, 102)));
    assert_eq!(m.len(), 1);
    assert_eq!(eng.live_match_count(), 1);
}

#[test]
fn partial_prefix_expiry_prunes_descendants_only() {
    // Query a→b, b→c, b→d with 0≺1, 0≺2: two leaves share the prefix.
    let q = QueryGraph::new(
        vec![VLabel(0), VLabel(1), VLabel(2), VLabel(2)],
        vec![
            QueryEdge { src: 0, dst: 1, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 2, label: ELabel::NONE },
            QueryEdge { src: 1, dst: 3, label: ELabel::NONE },
        ],
        &[(0, 1), (0, 2)],
    )
    .unwrap();
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(100);
    eng.advance(&w.advance(StreamEdge::new(1, 10, 0, 11, 1, 0, 1)));
    eng.advance(&w.advance(StreamEdge::new(2, 11, 1, 12, 2, 0, 2)));
    let m = eng.advance(&w.advance(StreamEdge::new(3, 11, 1, 13, 2, 0, 3)));
    assert_eq!(
        m.len(),
        2,
        "two (c,d) assignments: (12,13) and (13,12)? \
        no — ε1→e2/ε2→e3 and ε1→e3/ε2→e2, both valid: {m:?}"
    );
}

#[test]
fn sjtree_and_timing_agree_after_heavy_sliding() {
    let q = two_path(&[(0, 1)]);
    let mut a = engine(&q);
    let mut b = SjTree::new(q.clone());
    let mut w1 = SlidingWindow::new(7);
    let mut w2 = SlidingWindow::new(7);
    let mut total_a = 0;
    let mut total_b = 0;
    // Repeating pattern with increasing gaps: exercises many expiries.
    let mut ts = 0u64;
    for round in 0..40u64 {
        ts += 1 + round % 3;
        let e1 = StreamEdge::new(round * 2, 10, 0, 11, 1, 0, ts);
        total_a += a.advance(&w1.advance(e1)).len();
        total_b += b.advance(&w2.advance(e1)).len();
        ts += 1 + (round / 2) % 4;
        let e2 = StreamEdge::new(round * 2 + 1, 11, 1, 12, 2, 0, ts);
        total_a += a.advance(&w1.advance(e2)).len();
        total_b += b.advance(&w2.advance(e2)).len();
    }
    assert_eq!(total_a, total_b);
    assert!(total_a > 0);
}

#[test]
fn empty_window_engine_is_stable() {
    // Long silence between edges: everything expires between ticks.
    let q = two_path(&[]);
    let mut eng = engine(&q);
    let mut w = SlidingWindow::new(2);
    for i in 0..20u64 {
        let m = eng.advance(&w.advance(StreamEdge::new(i, 10, 0, 11, 1, 0, (i + 1) * 100)));
        assert!(m.is_empty());
        assert_eq!(eng.live_match_count(), 0);
    }
    assert_eq!(eng.stats().partials_deleted, 19, "each tick expires the previous edge");
}
