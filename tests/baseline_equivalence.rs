#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench targets panic by design
//! The baselines must also be *correct* (they are slower, not wrong):
//! SJ-tree and IncMat (all three matcher styles) report exactly the
//! oracle's new-match sets on random streams.

use tcs_baselines::{IncMat, SjTree};
use tcs_graph::gen::{Dataset, QueryGen, TimingMode};
use tcs_graph::window::SlidingWindow;
use tcs_graph::{MatchRecord, QueryGraph, StreamEdge};
use tcs_subiso::{SnapshotOracle, Strategy};

fn dense_stream(n: usize, n_vertices: u32, n_labels: u16, seed: u64) -> Vec<StreamEdge> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let src = rng.gen_range(0..n_vertices);
            let mut dst = rng.gen_range(0..n_vertices);
            while dst == src {
                dst = rng.gen_range(0..n_vertices);
            }
            StreamEdge::new(
                i as u64,
                src,
                (src % n_labels as u32) as u16,
                dst,
                (dst % n_labels as u32) as u16,
                0,
                i as u64 + 1,
            )
        })
        .collect()
}

fn queries(edges: &[StreamEdge], seed: u64) -> Vec<QueryGraph> {
    let gen = QueryGen::new(edges, edges.len().min(100));
    let mut out = Vec::new();
    for size in [2usize, 3] {
        for mode in [TimingMode::Full, TimingMode::Empty, TimingMode::Random] {
            out.extend(gen.generate_many(size, mode, 1, seed));
        }
    }
    out
}

#[test]
fn sjtree_equals_oracle() {
    for seed in 0..3u64 {
        let edges = dense_stream(220, 6, 2, seed);
        for q in queries(&edges, seed) {
            let mut oracle = SnapshotOracle::new(q.clone());
            let mut sj = SjTree::new(q.clone());
            let mut w1 = SlidingWindow::new(50);
            let mut w2 = SlidingWindow::new(50);
            for (tick, &e) in edges.iter().enumerate() {
                let expected = oracle.advance(&w1.advance(e));
                let mut got: Vec<MatchRecord> = sj.advance(&w2.advance(e));
                got.sort();
                assert_eq!(got, expected, "sjtree seed={seed} tick={tick}");
            }
        }
    }
}

#[test]
fn incmat_equals_oracle_for_every_strategy() {
    for seed in 3..5u64 {
        let edges = dense_stream(200, 6, 2, seed);
        for q in queries(&edges, seed) {
            for strategy in Strategy::ALL {
                let mut oracle = SnapshotOracle::new(q.clone());
                let mut inc = IncMat::new(q.clone(), strategy);
                let mut w1 = SlidingWindow::new(40);
                let mut w2 = SlidingWindow::new(40);
                for (tick, &e) in edges.iter().enumerate() {
                    let expected = oracle.advance(&w1.advance(e));
                    let mut got: Vec<MatchRecord> = inc.advance(&w2.advance(e));
                    got.sort();
                    got.dedup();
                    assert_eq!(got, expected, "incmat {strategy:?} seed={seed} tick={tick}");
                }
            }
        }
    }
}

#[test]
fn all_five_systems_agree_on_realistic_data() {
    use tcs_core::{MsTreeStore, PlanOptions, QueryPlan, TimingEngine};
    let edges = Dataset::SocialStream.generate(400, 17);
    let gen = QueryGen::new(&edges, 200);
    for q in gen.generate_many(3, TimingMode::Random, 3, 5) {
        let mut timing: TimingEngine<MsTreeStore> =
            TimingEngine::new(QueryPlan::build(q.clone(), PlanOptions::timing()));
        let mut sj = SjTree::new(q.clone());
        let mut inc = IncMat::new(q.clone(), Strategy::QuickSi);
        let mut oracle = SnapshotOracle::new(q.clone());
        let mut ws: Vec<SlidingWindow> = (0..4).map(|_| SlidingWindow::new(150)).collect();
        for &e in &edges {
            let expected = oracle.advance(&ws[0].advance(e));
            let mut a = timing.advance(&ws[1].advance(e));
            a.sort();
            let mut b = sj.advance(&ws[2].advance(e));
            b.sort();
            let mut c = inc.advance(&ws[3].advance(e));
            c.sort();
            assert_eq!(a, expected, "timing");
            assert_eq!(b, expected, "sjtree");
            assert_eq!(c, expected, "incmat");
        }
    }
}
